"""Block-structured adaptive mesh refinement grid (2-D quadtree).

This is the reproduction's stand-in for PARAMESH/AmReX as used by Flash-X:

* the domain is covered by equal-size blocks organised in a quadtree;
* every block carries the same number of cells, so a block one level finer
  resolves twice the spatial resolution;
* only leaf blocks carry the evolving solution;
* refinement follows an error estimator (Löhner by default) and maintains
  proper nesting (adjacent leaves differ by at most one level);
* guard-cell (ghost) regions are filled from same-level neighbours, from
  coarser neighbours by prolongation, from finer neighbours by restriction,
  and from the domain boundary conditions.

The physics solvers never look at the tree: they receive one block at a
time with filled guard cells, which is exactly the Flash-X solver contract
the paper's per-block (M−l cutoff) truncation policies rely on.
"""
from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..kernels.grid import GuardFillPlan
from ..kernels.scratch import grid_plane_enabled, make_workspace
from .block import Block, BlockKey
from .refinement import (
    block_error,
    lohner_error,
    prolong,
    restrict,
    stacked_block_errors,
)

__all__ = ["AMRGrid", "RegridSummary"]

_SIDES = ("-x", "+x", "-y", "+y")
_OFFSETS = {"-x": (-1, 0), "+x": (1, 0), "-y": (0, -1), "+y": (0, 1)}


class RegridSummary:
    """Outcome of one regrid pass."""

    def __init__(self, refined: int, derefined: int, n_leaves: int, max_level: int) -> None:
        self.refined = refined
        self.derefined = derefined
        self.n_leaves = n_leaves
        self.max_level = max_level

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RegridSummary(refined={self.refined}, derefined={self.derefined}, "
            f"leaves={self.n_leaves}, max_level={self.max_level})"
        )


class AMRGrid:
    """A 2-D block-structured AMR hierarchy.

    Parameters
    ----------
    variables:
        Names of the cell-centred variables carried by every block.
    xlim, ylim:
        Physical domain bounds.
    nxb, nyb:
        Cells per block in x and y (must be even and >= 2*ng).
    n_root_x, n_root_y:
        Number of level-1 (root) blocks in each direction.
    max_level:
        Maximum refinement level (level 1 = root).
    ng:
        Guard-cell width (3 supports the WENO5 stencil).
    boundary:
        "outflow" (zero gradient), "periodic", or "reflect" — applied to both
        axes — or a mapping ``{"x": kind, "y": kind}`` for mixed boundaries
        (e.g. the Rayleigh–Taylor box: periodic in x, reflecting walls in y).
    reflect_vars:
        For reflecting boundaries: mapping direction ('x' or 'y') to the
        variable whose sign flips across that boundary (normal velocity).
    fused_grid:
        Fill guard cells through a precomputed
        :class:`~repro.kernels.grid.GuardFillPlan` (rebuilt only when the
        tree topology changes) and run batching-capable regrid estimators
        over one stacked array — both bit-identical to the per-block
        Python paths.  ``None`` follows the ``RAPTOR_FAST_NO_GRID``
        environment switch (default on).
    """

    def __init__(
        self,
        variables: Sequence[str],
        xlim: Tuple[float, float] = (0.0, 1.0),
        ylim: Tuple[float, float] = (0.0, 1.0),
        nxb: int = 8,
        nyb: int = 8,
        n_root_x: int = 1,
        n_root_y: int = 1,
        max_level: int = 3,
        ng: int = 3,
        boundary="outflow",
        reflect_vars: Optional[Dict[str, str]] = None,
        fused_grid: Optional[bool] = None,
    ) -> None:
        if nxb % 2 or nyb % 2:
            raise ValueError("nxb and nyb must be even")
        if nxb < 2 * ng or nyb < 2 * ng:
            raise ValueError("blocks must hold at least 2*ng interior cells per direction")
        if max_level < 1:
            raise ValueError("max_level must be >= 1")
        if isinstance(boundary, str):
            boundary_x = boundary_y = boundary
        else:
            try:
                boundary_x = boundary["x"]
                boundary_y = boundary["y"]
            except (TypeError, KeyError):
                raise ValueError(
                    "boundary must be a string or a mapping with 'x' and 'y' keys, "
                    f"got {boundary!r}"
                ) from None
        for kind in (boundary_x, boundary_y):
            if kind not in ("outflow", "periodic", "reflect"):
                raise ValueError(f"unknown boundary condition {kind!r}")

        self.variables = list(variables)
        self.xlim = (float(xlim[0]), float(xlim[1]))
        self.ylim = (float(ylim[0]), float(ylim[1]))
        self.nxb = int(nxb)
        self.nyb = int(nyb)
        self.n_root_x = int(n_root_x)
        self.n_root_y = int(n_root_y)
        self.max_level = int(max_level)
        self.ng = int(ng)
        #: the original constructor argument (string or per-axis mapping)
        self.boundary = boundary
        self.boundary_x = boundary_x
        self.boundary_y = boundary_y
        self.reflect_vars = reflect_vars or {"x": "velx", "y": "vely"}

        self.fused_grid = grid_plane_enabled() if fused_grid is None else bool(fused_grid)
        #: bumped on every refine/derefine; the guard-fill plan caches it
        self._topology_epoch = 0
        self._guard_plan: Optional[GuardFillPlan] = None
        self._workspace = make_workspace() if self.fused_grid else None

        self.leaves: Dict[BlockKey, Block] = {}
        for ix in range(self.n_root_x):
            for iy in range(self.n_root_y):
                key = (1, ix, iy)
                self.leaves[key] = self._new_block(key)

    def __getstate__(self):
        # the guard-fill plan holds views into the current block arrays;
        # it is cheap to rebuild and must not cross a pickle boundary
        # (the Workspace already reduces to a fresh, empty instance)
        state = self.__dict__.copy()
        state["_guard_plan"] = None
        return state

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def blocks_along_x(self, level: int) -> int:
        return self.n_root_x * (1 << (level - 1))

    def blocks_along_y(self, level: int) -> int:
        return self.n_root_y * (1 << (level - 1))

    def _block_bounds(self, key: BlockKey) -> Tuple[float, float, float, float]:
        level, ix, iy = key
        sx = (self.xlim[1] - self.xlim[0]) / self.blocks_along_x(level)
        sy = (self.ylim[1] - self.ylim[0]) / self.blocks_along_y(level)
        xlo = self.xlim[0] + ix * sx
        ylo = self.ylim[0] + iy * sy
        return xlo, xlo + sx, ylo, ylo + sy

    def _new_block(self, key: BlockKey) -> Block:
        xlo, xhi, ylo, yhi = self._block_bounds(key)
        block = Block(key, self.nxb, self.nyb, self.ng, xlo, xhi, ylo, yhi)
        block.allocate(self.variables)
        return block

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def sorted_keys(self) -> List[BlockKey]:
        return sorted(self.leaves.keys())

    def blocks(self) -> List[Block]:
        """Leaf blocks in deterministic (sorted-key) order."""
        return [self.leaves[k] for k in self.sorted_keys()]

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    @property
    def finest_level(self) -> int:
        """Finest level currently present in the hierarchy."""
        return max(k[0] for k in self.leaves)

    def leaf_levels(self) -> Dict[int, int]:
        """Histogram of leaf counts per level."""
        hist: Dict[int, int] = {}
        for level, _, _ in self.leaves:
            hist[level] = hist.get(level, 0) + 1
        return dict(sorted(hist.items()))

    # ------------------------------------------------------------------
    # initialisation
    # ------------------------------------------------------------------
    def initialize(self, init_fn: Callable[[np.ndarray, np.ndarray], Dict[str, np.ndarray]]) -> None:
        """Apply an initial condition ``init_fn(x, y) -> {var: values}`` to
        every leaf block's interior, then fill guard cells."""
        for block in self.blocks():
            x, y = block.cell_mesh()
            fields = init_fn(x, y)
            for name, values in fields.items():
                if name in block.data:
                    block.set_interior(name, values)
        self.fill_guard_cells()

    def initialize_with_refinement(
        self,
        init_fn: Callable[[np.ndarray, np.ndarray], Dict[str, np.ndarray]],
        refine_vars: Sequence[str],
        refine_cutoff: float = 0.8,
        derefine_cutoff: float = 0.2,
        passes: Optional[int] = None,
    ) -> None:
        """Initialise and iteratively refine until the initial condition is
        resolved (the standard Flash-X start-up sequence)."""
        if passes is None:
            passes = self.max_level
        self.initialize(init_fn)
        for _ in range(passes):
            summary = self.regrid(refine_vars, refine_cutoff, derefine_cutoff)
            self.initialize(init_fn)
            if summary.refined == 0:
                break

    # ------------------------------------------------------------------
    # neighbours
    # ------------------------------------------------------------------
    def _wrap_index(self, level: int, nix: int, niy: int) -> Optional[Tuple[int, int]]:
        nbx, nby = self.blocks_along_x(level), self.blocks_along_y(level)
        if self.boundary_x == "periodic":
            nix %= nbx
        elif not 0 <= nix < nbx:
            return None
        if self.boundary_y == "periodic":
            niy %= nby
        elif not 0 <= niy < nby:
            return None
        return nix, niy

    def neighbor(self, key: BlockKey, side: str) -> Tuple[str, object]:
        """Locate the neighbour of a leaf across ``side``.

        Returns one of ``("same", key)``, ``("coarse", key)``,
        ``("fine", [key_low, key_high])`` (ordered along the transverse
        direction), or ``("boundary", None)``.
        """
        level, ix, iy = key
        di, dj = _OFFSETS[side]
        wrapped = self._wrap_index(level, ix + di, iy + dj)
        if wrapped is None:
            return ("boundary", None)
        nix, niy = wrapped

        same = (level, nix, niy)
        if same in self.leaves:
            return ("same", same)

        if level > 1:
            coarse = (level - 1, nix // 2, niy // 2)
            if coarse in self.leaves:
                return ("coarse", coarse)

        # finer neighbours: the two children of `same` that touch our face
        if side == "-x":
            fine = [(level + 1, 2 * nix + 1, 2 * niy), (level + 1, 2 * nix + 1, 2 * niy + 1)]
        elif side == "+x":
            fine = [(level + 1, 2 * nix, 2 * niy), (level + 1, 2 * nix, 2 * niy + 1)]
        elif side == "-y":
            fine = [(level + 1, 2 * nix, 2 * niy + 1), (level + 1, 2 * nix + 1, 2 * niy + 1)]
        else:  # "+y"
            fine = [(level + 1, 2 * nix, 2 * niy), (level + 1, 2 * nix + 1, 2 * niy)]
        if all(k in self.leaves for k in fine):
            return ("fine", fine)

        raise RuntimeError(
            f"proper nesting violated: no neighbour found for {key} on side {side}"
        )

    # ------------------------------------------------------------------
    # guard-cell filling
    # ------------------------------------------------------------------
    def fill_guard_cells(self, variables: Optional[Iterable[str]] = None) -> None:
        """Fill the guard cells of every leaf for the given variables.

        Corners are filled with the nearest interior value; the dimension-by-
        dimension solvers only consume face guard cells, so corners only need
        to hold finite values.

        On the fused grid plane (``fused_grid``) the fill executes a
        precomputed :class:`~repro.kernels.grid.GuardFillPlan` — the same
        copies bound once per topology instead of re-deriving neighbours
        and slices every call; bit-identical because every strip reads
        interior cells only, so the fill is order independent.
        """
        names = list(variables) if variables is not None else self.variables
        if self.fused_grid:
            self._guard_fill_plan().fill(names)
            return
        for key in self.sorted_keys():
            block = self.leaves[key]
            for name in names:
                self._fill_block_guards(block, name)

    def _guard_fill_plan(self) -> GuardFillPlan:
        """The guard-fill plan for the current topology (cached per epoch)."""
        plan = self._guard_plan
        if plan is None or plan.epoch != self._topology_epoch:
            plan = GuardFillPlan(self)
            self._guard_plan = plan
        return plan

    def _fill_block_guards(self, block: Block, name: str) -> None:
        ng, nxb, nyb = self.ng, self.nxb, self.nyb
        data = block.data[name]

        for side in _SIDES:
            kind, info = self.neighbor(block.key, side)
            strip = self._neighbor_strip(block, name, side, kind, info)
            if side == "-x":
                data[0:ng, ng:ng + nyb] = strip
            elif side == "+x":
                data[ng + nxb:, ng:ng + nyb] = strip
            elif side == "-y":
                data[ng:ng + nxb, 0:ng] = strip
            else:
                data[ng:ng + nxb, ng + nyb:] = strip

        # corners: nearest interior value (never consumed by the solvers)
        data[0:ng, 0:ng] = data[ng, ng]
        data[0:ng, ng + nyb:] = data[ng, ng + nyb - 1]
        data[ng + nxb:, 0:ng] = data[ng + nxb - 1, ng]
        data[ng + nxb:, ng + nyb:] = data[ng + nxb - 1, ng + nyb - 1]

    def _neighbor_strip(
        self, block: Block, name: str, side: str, kind: str, info
    ) -> np.ndarray:
        """Compute the guard-cell strip for one side of one block."""
        ng, nxb, nyb = self.ng, self.nxb, self.nyb

        if kind == "boundary":
            return self._boundary_strip(block, name, side)

        if kind == "same":
            nb = self.leaves[info]
            src = nb.data[name]
            if side == "-x":
                return src[nxb:nxb + ng, ng:ng + nyb]
            if side == "+x":
                return src[ng:2 * ng, ng:ng + nyb]
            if side == "-y":
                return src[ng:ng + nxb, nyb:nyb + ng]
            return src[ng:ng + nxb, ng:2 * ng]

        if kind == "coarse":
            return self._coarse_strip(block, name, side, info)

        # fine
        return self._fine_strip(block, name, side, info)

    def _boundary_strip(self, block: Block, name: str, side: str) -> np.ndarray:
        ng, nxb, nyb = self.ng, self.nxb, self.nyb
        data = block.data[name]
        if side in ("-x", "+x"):
            edge = data[ng, ng:ng + nyb] if side == "-x" else data[ng + nxb - 1, ng:ng + nyb]
            if self.boundary_x == "outflow":
                return np.tile(edge, (ng, 1))
            # reflect
            if side == "-x":
                strip = data[ng:2 * ng, ng:ng + nyb][::-1, :].copy()
            else:
                strip = data[nxb:nxb + ng, ng:ng + nyb][::-1, :].copy()
            if name == self.reflect_vars.get("x"):
                strip = -strip
            return strip
        edge = data[ng:ng + nxb, ng] if side == "-y" else data[ng:ng + nxb, ng + nyb - 1]
        if self.boundary_y == "outflow":
            return np.tile(edge[:, None], (1, ng))
        if side == "-y":
            strip = data[ng:ng + nxb, ng:2 * ng][:, ::-1].copy()
        else:
            strip = data[ng:ng + nxb, nyb:nyb + ng][:, ::-1].copy()
        if name == self.reflect_vars.get("y"):
            strip = -strip
        return strip

    def _coarse_strip(self, block: Block, name: str, side: str, ckey: BlockKey) -> np.ndarray:
        """Guard strip taken from a coarser neighbour (prolongation)."""
        ng, nxb, nyb = self.ng, self.nxb, self.nyb
        nb = self.leaves[ckey]
        src = nb.data[name]
        ngc = (ng + 1) // 2  # coarse cells needed to cover ng fine cells

        _, ix, iy = block.key
        if side in ("-x", "+x"):
            # our block covers the lower or upper half of the coarse
            # neighbour's y extent
            j0 = ng + (iy % 2) * (nyb // 2)
            if side == "-x":
                patch = src[ng + nxb - ngc:ng + nxb, j0:j0 + nyb // 2]
                fine = prolong(patch)
                return fine[-ng:, :]
            patch = src[ng:ng + ngc, j0:j0 + nyb // 2]
            fine = prolong(patch)
            return fine[:ng, :]
        i0 = ng + (ix % 2) * (nxb // 2)
        if side == "-y":
            patch = src[i0:i0 + nxb // 2, ng + nyb - ngc:ng + nyb]
            fine = prolong(patch)
            return fine[:, -ng:]
        patch = src[i0:i0 + nxb // 2, ng:ng + ngc]
        fine = prolong(patch)
        return fine[:, :ng]

    def _fine_strip(self, block: Block, name: str, side: str, fine_keys: List[BlockKey]) -> np.ndarray:
        """Guard strip taken from two finer neighbours (restriction)."""
        ng, nxb, nyb = self.ng, self.nxb, self.nyb
        lo, hi = (self.leaves[k] for k in sorted(fine_keys, key=lambda k: (k[2], k[1])))

        if side in ("-x", "+x"):
            pieces = []
            for nb in (lo, hi):
                src = nb.data[name]
                if side == "-x":
                    patch = src[ng + nxb - 2 * ng:ng + nxb, ng:ng + nyb]
                else:
                    patch = src[ng:ng + 2 * ng, ng:ng + nyb]
                pieces.append(restrict(patch))
            return np.concatenate(pieces, axis=1)
        pieces = []
        for nb in (lo, hi):
            src = nb.data[name]
            if side == "-y":
                patch = src[ng:ng + nxb, ng + nyb - 2 * ng:ng + nyb]
            else:
                patch = src[ng:ng + nxb, ng:ng + 2 * ng]
            pieces.append(restrict(patch))
        return np.concatenate(pieces, axis=0)

    # ------------------------------------------------------------------
    # refinement / derefinement
    # ------------------------------------------------------------------
    def refine_block(self, key: BlockKey) -> List[BlockKey]:
        """Split a leaf into its four children (piecewise-constant prolongation)."""
        if key not in self.leaves:
            raise KeyError(f"{key} is not a leaf")
        self._topology_epoch += 1
        parent = self.leaves.pop(key)
        children: List[BlockKey] = []
        for child_key in parent.child_keys():
            child = self._new_block(child_key)
            _, cix, ciy = child_key
            ox = (cix % 2) * (self.nxb // 2)
            oy = (ciy % 2) * (self.nyb // 2)
            for name in self.variables:
                coarse_patch = parent.interior_view(name)[ox:ox + self.nxb // 2, oy:oy + self.nyb // 2]
                child.set_interior(name, prolong(coarse_patch))
            self.leaves[child_key] = child
            children.append(child_key)
        return children

    def derefine_siblings(self, parent_key: BlockKey) -> BlockKey:
        """Merge the four children of ``parent_key`` back into one leaf."""
        level, ix, iy = parent_key
        child_keys = [
            (level + 1, 2 * ix, 2 * iy),
            (level + 1, 2 * ix + 1, 2 * iy),
            (level + 1, 2 * ix, 2 * iy + 1),
            (level + 1, 2 * ix + 1, 2 * iy + 1),
        ]
        if not all(k in self.leaves for k in child_keys):
            raise KeyError(f"not all children of {parent_key} are leaves")
        self._topology_epoch += 1
        parent = self._new_block(parent_key)
        for child_key in child_keys:
            child = self.leaves.pop(child_key)
            _, cix, ciy = child_key
            ox = (cix % 2) * (self.nxb // 2)
            oy = (ciy % 2) * (self.nyb // 2)
            for name in self.variables:
                parent.interior_view(name)[ox:ox + self.nxb // 2, oy:oy + self.nyb // 2] = restrict(
                    child.interior_view(name)
                )
        self.leaves[parent_key] = parent
        return parent_key

    def _neighbor_keys_all(self, key: BlockKey) -> List[Tuple[str, object]]:
        return [self.neighbor(key, side) for side in _SIDES]

    def _estimate_errors(self, refine_vars: Sequence[str], estimator) -> Dict[BlockKey, float]:
        """Per-leaf error map (the estimator pass of :meth:`regrid`).

        On the fused grid plane, estimators that declare
        ``supports_batching`` run once over a ``(nblocks, nx, ny)`` stack;
        custom 2-D estimators (and the knob-off path) evaluate per block.
        Both forms are bit-identical.
        """
        keys = self.sorted_keys()
        if self.fused_grid and getattr(estimator, "supports_batching", False):
            if self._workspace is not None:
                # quiescent point: stack shapes change with the leaf count,
                # so let the workspace drop stale families when over cap
                self._workspace.trim()
            values = stacked_block_errors(
                self.blocks(), refine_vars, estimator=estimator, ws=self._workspace
            )
            return {key: float(v) for key, v in zip(keys, values)}
        return {
            key: block_error(self.leaves[key], refine_vars, estimator=estimator)
            for key in keys
        }

    def regrid(
        self,
        refine_vars: Sequence[str],
        refine_cutoff: float = 0.8,
        derefine_cutoff: float = 0.2,
        estimator=lohner_error,
    ) -> RegridSummary:
        """One refinement/derefinement pass driven by the error estimator.

        The estimator is evaluated on the *current* (possibly truncated)
        solution — this is how aggressive truncation perturbs the AMR
        decisions and the operation counts in the paper (Figure 7).
        """
        self.fill_guard_cells(refine_vars)
        errors = self._estimate_errors(refine_vars, estimator)

        refine = {
            key
            for key, err in errors.items()
            if err > refine_cutoff and key[0] < self.max_level
        }

        # proper nesting: a refined block may not touch a leaf two levels
        # coarser, so coarse neighbours of marked blocks must refine as well.
        changed = True
        while changed:
            changed = False
            for key in list(refine):
                for kind, info in self._neighbor_keys_all(key):
                    if kind == "coarse" and info not in refine:
                        if info in self.leaves and info[0] < self.max_level:
                            refine.add(info)
                            changed = True

        n_refined = 0
        for key in sorted(refine, key=lambda k: k[0]):  # coarse levels first
            if key in self.leaves:
                self.refine_block(key)
                n_refined += 1

        # derefinement: all four siblings are quiet leaves and merging them
        # does not break nesting (no sibling touches a finer leaf).
        n_derefined = 0
        candidates: Dict[BlockKey, List[BlockKey]] = {}
        for key in self.sorted_keys():
            level = key[0]
            if level <= 1 or key in refine:
                continue
            if errors.get(key, np.inf) >= derefine_cutoff:
                continue
            parent = (level - 1, key[1] // 2, key[2] // 2)
            candidates.setdefault(parent, []).append(key)

        for parent, kids in sorted(candidates.items()):
            if len(kids) != 4:
                continue
            if any(k not in self.leaves for k in kids):
                continue
            safe = True
            for k in kids:
                for kind, _ in self._neighbor_keys_all(k):
                    if kind == "fine":
                        safe = False
                        break
                if not safe:
                    break
            if safe:
                self.derefine_siblings(parent)
                n_derefined += 1

        self.fill_guard_cells()
        return RegridSummary(n_refined, n_derefined, self.n_leaves, self.finest_level)

    # ------------------------------------------------------------------
    # covering-grid output and diagnostics
    # ------------------------------------------------------------------
    def uniform_data(self, name: str, level: Optional[int] = None) -> np.ndarray:
        """Sample a variable onto the uniform grid of ``level`` (default: the
        finest level present), prolonging coarser leaves by injection.

        This is what the checkpoint comparison utility (sfocu analogue)
        consumes.
        """
        if level is None:
            level = self.finest_level
        nx = self.blocks_along_x(level) * self.nxb
        ny = self.blocks_along_y(level) * self.nyb
        out = np.zeros((nx, ny), dtype=np.float64)
        for key in self.sorted_keys():
            block = self.leaves[key]
            blevel, bix, biy = key
            if blevel > level:
                raise ValueError(
                    f"cannot sample level {level}: leaf {key} is finer; "
                    "sample at grid.finest_level instead"
                )
            factor = 1 << (level - blevel)
            values = block.interior_view(name)
            if factor > 1:
                values = prolong(values, factor)
            i0 = bix * self.nxb * factor
            j0 = biy * self.nyb * factor
            out[i0:i0 + values.shape[0], j0:j0 + values.shape[1]] = values
        return out

    def uniform_coordinates(self, level: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Cell-centre coordinate vectors of the covering grid at ``level``."""
        if level is None:
            level = self.finest_level
        nx = self.blocks_along_x(level) * self.nxb
        ny = self.blocks_along_y(level) * self.nyb
        dx = (self.xlim[1] - self.xlim[0]) / nx
        dy = (self.ylim[1] - self.ylim[0]) / ny
        x = self.xlim[0] + (np.arange(nx) + 0.5) * dx
        y = self.ylim[0] + (np.arange(ny) + 0.5) * dy
        return x, y

    def level_map(self, level: Optional[int] = None) -> np.ndarray:
        """Refinement level of the leaf covering each cell of the covering grid."""
        if level is None:
            level = self.finest_level
        nx = self.blocks_along_x(level) * self.nxb
        ny = self.blocks_along_y(level) * self.nyb
        out = np.zeros((nx, ny), dtype=np.int64)
        for key in self.sorted_keys():
            blevel, bix, biy = key
            factor = 1 << (level - blevel)
            i0 = bix * self.nxb * factor
            j0 = biy * self.nyb * factor
            out[i0:i0 + self.nxb * factor, j0:j0 + self.nyb * factor] = blevel
        return out

    def total_integral(self, name: str) -> float:
        """Domain integral of a variable (for conservation checks)."""
        return float(sum(block.integral(name) for block in self.blocks()))
