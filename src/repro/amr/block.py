"""AMR blocks.

Flash-X (via PARAMESH/AmReX) divides the domain into blocks organised in an
octree: every block holds the same number of cells, blocks one level finer
are half the physical size in each dimension, and the solution lives on leaf
blocks.  This module provides the 2-D block used by :mod:`repro.amr.grid`.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

import numpy as np

__all__ = ["BlockKey", "Block"]

#: (level, ix, iy) — level starts at 1 for root blocks; (ix, iy) index the
#: block within the uniform block-grid of its level.
BlockKey = Tuple[int, int, int]


@dataclass
class Block:
    """One AMR block: a ``nxb x nyb`` patch of cells plus guard cells.

    Data arrays are stored with shape ``(nxb + 2*ng, nyb + 2*ng)`` and are
    indexed ``[i, j]`` with ``i`` along x and ``j`` along y; the interior
    occupies ``[ng:-ng, ng:-ng]``.
    """

    key: BlockKey
    nxb: int
    nyb: int
    ng: int
    xlo: float
    xhi: float
    ylo: float
    yhi: float
    data: Dict[str, np.ndarray] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        return self.key[0]

    @property
    def ix(self) -> int:
        return self.key[1]

    @property
    def iy(self) -> int:
        return self.key[2]

    @property
    def dx(self) -> float:
        return (self.xhi - self.xlo) / self.nxb

    @property
    def dy(self) -> float:
        return (self.yhi - self.ylo) / self.nyb

    @property
    def shape_with_guards(self) -> Tuple[int, int]:
        return (self.nxb + 2 * self.ng, self.nyb + 2 * self.ng)

    @property
    def interior(self) -> Tuple[slice, slice]:
        """Slices selecting the interior (non-guard) cells."""
        return (slice(self.ng, self.ng + self.nxb), slice(self.ng, self.ng + self.nyb))

    # ------------------------------------------------------------------
    def allocate(self, variables: Iterable[str]) -> None:
        """Allocate zero-filled storage (with guard cells) for ``variables``."""
        for name in variables:
            if name not in self.data:
                self.data[name] = np.zeros(self.shape_with_guards, dtype=np.float64)

    def interior_view(self, name: str) -> np.ndarray:
        """Writable view of the interior cells of a variable."""
        si, sj = self.interior
        return self.data[name][si, sj]

    def set_interior(self, name: str, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.nxb, self.nyb):
            raise ValueError(
                f"expected interior shape {(self.nxb, self.nyb)}, got {values.shape}"
            )
        self.interior_view(name)[...] = values

    # ------------------------------------------------------------------
    def cell_centers(self, include_guards: bool = False) -> Tuple[np.ndarray, np.ndarray]:
        """1-D arrays of x and y cell-centre coordinates."""
        if include_guards:
            i = np.arange(-self.ng, self.nxb + self.ng)
            j = np.arange(-self.ng, self.nyb + self.ng)
        else:
            i = np.arange(self.nxb)
            j = np.arange(self.nyb)
        x = self.xlo + (i + 0.5) * self.dx
        y = self.ylo + (j + 0.5) * self.dy
        return x, y

    def cell_mesh(self, include_guards: bool = False) -> Tuple[np.ndarray, np.ndarray]:
        """2-D meshgrid (indexing='ij') of cell-centre coordinates."""
        x, y = self.cell_centers(include_guards)
        return np.meshgrid(x, y, indexing="ij")

    @property
    def cell_area(self) -> float:
        return self.dx * self.dy

    def integral(self, name: str) -> float:
        """Volume integral of a variable over the block interior."""
        return float(np.sum(self.interior_view(name)) * self.cell_area)

    # ------------------------------------------------------------------
    def child_keys(self) -> Tuple[BlockKey, BlockKey, BlockKey, BlockKey]:
        """Keys of the four children this block would have if refined."""
        level, ix, iy = self.key
        return (
            (level + 1, 2 * ix, 2 * iy),
            (level + 1, 2 * ix + 1, 2 * iy),
            (level + 1, 2 * ix, 2 * iy + 1),
            (level + 1, 2 * ix + 1, 2 * iy + 1),
        )

    def parent_key(self) -> BlockKey:
        """Key of the parent block (root blocks raise)."""
        level, ix, iy = self.key
        if level <= 1:
            raise ValueError("root blocks have no parent")
        return (level - 1, ix // 2, iy // 2)

    def sibling_keys(self) -> Tuple[BlockKey, ...]:
        """Keys of the 4 blocks (including this one) sharing this block's parent."""
        level, ix, iy = self.key
        bx, by = (ix // 2) * 2, (iy // 2) * 2
        return (
            (level, bx, by),
            (level, bx + 1, by),
            (level, bx, by + 1),
            (level, bx + 1, by + 1),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Block(level={self.level}, ix={self.ix}, iy={self.iy}, "
            f"x=[{self.xlo:.3g},{self.xhi:.3g}], y=[{self.ylo:.3g},{self.yhi:.3g}])"
        )
