"""Refinement criteria.

Flash-X marks blocks for refinement with the Löhner error estimator: a
normalised, dimensionless second-derivative measure that is large near steep
gradients and discontinuities (shocks, interfaces) and small where the
solution is smooth.  The AMR experiments in the paper rely on exactly this
behaviour: the finest blocks follow the shock / interface, so excluding them
from truncation protects the sensitive regions.
"""
from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from .block import Block

__all__ = [
    "lohner_error",
    "gradient_error",
    "block_error",
    "stacked_block_errors",
    "prolong",
    "restrict",
]


def lohner_error(u: np.ndarray, filter_coefficient: float = 0.01) -> np.ndarray:
    """Löhner (1987) error estimator on a 2-D array.

    Returns an array of the same shape; the outermost ring of cells is set to
    zero because the stencil needs one neighbour in each direction.  The
    estimator is

    ``sqrt( sum |d2u|^2 / sum (|du|_avg + eps*|u|_avg)^2 )``

    where the sums run over the 2x2 cross-derivative stencil (here the two
    axis-aligned second differences, the standard FLASH simplification).

    Parameters
    ----------
    u:
        Cell-centred data (guard cells included if available).
    filter_coefficient:
        The ``epsilon`` damping constant that filters out ripples; FLASH uses
        0.01 by default.

    The stencil acts on the *trailing two* axes, so a stacked
    ``(nblocks, nx, ny)`` array is estimated in one shot
    (``supports_batching``); since the expressions are element-wise over
    the same values, the stacked form is bit-identical to evaluating each
    2-D slice separately.
    """
    u = np.asarray(u, dtype=np.float64)
    err = np.zeros_like(u)
    if u.shape[-2] < 3 or u.shape[-1] < 3:
        return err

    c = u[..., 1:-1, 1:-1]
    xp, xm = u[..., 2:, 1:-1], u[..., :-2, 1:-1]
    yp, ym = u[..., 1:-1, 2:], u[..., 1:-1, :-2]

    num = (xp - 2 * c + xm) ** 2 + (yp - 2 * c + ym) ** 2
    den = (
        (np.abs(xp - c) + np.abs(c - xm) + filter_coefficient * (np.abs(xp) + 2 * np.abs(c) + np.abs(xm))) ** 2
        + (np.abs(yp - c) + np.abs(c - ym) + filter_coefficient * (np.abs(yp) + 2 * np.abs(c) + np.abs(ym))) ** 2
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(den > 0, num / den, 0.0)
    err[..., 1:-1, 1:-1] = np.sqrt(ratio)
    return err


lohner_error.supports_batching = True


def gradient_error(u: np.ndarray) -> np.ndarray:
    """Simple normalised-gradient estimator (used by some tests/examples).

    Trailing-axes stencil like :func:`lohner_error`, so stacked evaluation
    is supported and bit-identical to the per-slice form.
    """
    u = np.asarray(u, dtype=np.float64)
    err = np.zeros_like(u)
    if u.shape[-2] < 3 or u.shape[-1] < 3:
        return err
    c = u[..., 1:-1, 1:-1]
    dx = np.abs(u[..., 2:, 1:-1] - u[..., :-2, 1:-1])
    dy = np.abs(u[..., 1:-1, 2:] - u[..., 1:-1, :-2])
    scale = np.abs(c) + 1e-30
    err[..., 1:-1, 1:-1] = 0.5 * (dx + dy) / scale
    return err


gradient_error.supports_batching = True


def block_error(
    block: Block,
    variables: Iterable[str],
    estimator=lohner_error,
    use_guards: bool = True,
) -> float:
    """Maximum estimator value over the block, across refinement variables."""
    worst = 0.0
    for name in variables:
        arr = block.data[name] if use_guards else block.interior_view(name)
        err = estimator(arr)
        if use_guards and block.ng > 0:
            ng = block.ng
            err = err[ng:-ng, ng:-ng]
        if err.size:
            worst = max(worst, float(np.max(err)))
    return worst


def stacked_block_errors(
    blocks,
    variables: Iterable[str],
    estimator=lohner_error,
    ws=None,
) -> np.ndarray:
    """Per-block :func:`block_error` over a stack of same-shape blocks.

    The fused grid plane's estimator pass: all blocks (every AMR level —
    they share one cell shape) are copied into a ``(nblocks, nx, ny)``
    scratch stack and the estimator runs once over the trailing axes.
    Bit-identical to ``[block_error(b, variables, estimator) for b in
    blocks]`` (with guards, the default) because the stacked estimator is
    element-wise equal to the per-slice one and the max reductions are
    exact.  Only estimators declaring ``supports_batching`` are accepted —
    a plain 2-D estimator applied to a 3-D stack would silently mix axes.
    """
    if not getattr(estimator, "supports_batching", False):
        raise ValueError(
            "estimator does not support stacked evaluation; "
            "evaluate block_error per block instead"
        )
    from ..kernels.scratch import out_accessor

    blocks = list(blocks)
    if not blocks:
        return np.zeros(0)
    o = out_accessor(ws)
    first = blocks[0]
    ng = first.ng
    shape = (len(blocks), *first.shape_with_guards)
    stack = o(("estimator", "stack"), shape)
    if stack is None:
        stack = np.empty(shape)
    worst = np.zeros(len(blocks))
    for name in variables:
        for i, block in enumerate(blocks):
            np.copyto(stack[i], block.data[name])
        err = estimator(stack)
        if ng > 0:
            err = err[:, ng:-ng, ng:-ng]
        np.maximum(worst, err.max(axis=(1, 2)), out=worst)
    return worst


# ---------------------------------------------------------------------------
# inter-level transfer operators
# ---------------------------------------------------------------------------
def prolong(coarse: np.ndarray, factor: int = 2) -> np.ndarray:
    """Piecewise-constant prolongation (injection) coarse -> fine.

    Each coarse cell value is copied into the ``factor x factor`` fine cells
    it covers; this preserves cell averages exactly and never creates new
    extrema, which keeps the transfer benign for the truncation studies.
    """
    coarse = np.asarray(coarse, dtype=np.float64)
    return np.repeat(np.repeat(coarse, factor, axis=0), factor, axis=1)


def restrict(fine: np.ndarray, factor: int = 2) -> np.ndarray:
    """Conservative restriction fine -> coarse (mean over each ``factor^2`` patch)."""
    fine = np.asarray(fine, dtype=np.float64)
    nx, ny = fine.shape
    if nx % factor or ny % factor:
        raise ValueError(f"fine shape {fine.shape} not divisible by factor {factor}")
    return fine.reshape(nx // factor, factor, ny // factor, factor).mean(axis=(1, 3))
