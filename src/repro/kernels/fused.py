"""Pre-fused numpy kernels for the fast plane.

These are the hot reconstruction stencils of :mod:`repro.hydro.reconstruction`
(and the WENO5 advection operators of :mod:`repro.incomp.solver`) written as
straight-line numpy, with no context dispatch at all.  They exist purely for
speed: each function evaluates **exactly the same ufuncs in the same order**
as its context-based twin, so on binary64 data the results are bit-identical
— the property the kernel-plane equivalence tests pin down.

Consumers select them via the :attr:`~repro.kernels.fast.FastPlaneContext.fused`
flag on the active context; instrumented contexts keep the op-by-op path
(they must, since every operation feeds the counters / truncation).
"""
from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["FUSED_SCHEMES", "pcm", "plm", "weno5", "weno5_edge"]

#: matches ``repro.hydro.reconstruction._WENO_EPS``
_WENO_EPS = 1e-6


def _shift(u: np.ndarray, axis: int, offset: int, ng: int, n: int) -> np.ndarray:
    """Cells ``i + offset`` for the face range (same indexing as the
    context-based reconstruction)."""
    start = ng - 1 + offset
    stop = start + n + 1
    if axis == 0:
        return u[start:stop, :]
    return u[:, start:stop]


def pcm(u: np.ndarray, axis: int, ng: int, n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Piecewise-constant reconstruction (pure data movement)."""
    return _shift(u, axis, 0, ng, n), _shift(u, axis, 1, ng, n)


def _minmod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    same_sign = (a * b) > 0.0
    mag = np.where(np.abs(a) < np.abs(b), a, b)
    return np.where(same_sign, mag, np.zeros(mag.shape))


def plm(u: np.ndarray, axis: int, ng: int, n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Piecewise-linear (minmod-limited) reconstruction, fused."""
    um1 = _shift(u, axis, -1, ng, n)
    uc = _shift(u, axis, 0, ng, n)
    up1 = _shift(u, axis, 1, ng, n)
    up2 = _shift(u, axis, 2, ng, n)

    slope_left = _minmod(uc - um1, up1 - uc)
    slope_right = _minmod(up1 - uc, up2 - up1)

    left = uc + 0.5 * slope_left
    right = up1 - 0.5 * slope_right
    return left, right


def weno5_edge(um2, um1, u0, up1, up2) -> np.ndarray:
    """Jiang–Shu WENO5 right-edge value of cell 0, fused.

    The association of every sum/product mirrors
    ``repro.hydro.reconstruction._weno5_edge`` term for term — do not
    "simplify" the algebra here, the parenthesisation is the contract.
    """
    q0 = (1.0 / 6.0) * ((2.0 * um2 - 7.0 * um1) + 11.0 * u0)
    q1 = (1.0 / 6.0) * ((5.0 * u0 - um1) + 2.0 * up1)
    q2 = (1.0 / 6.0) * ((2.0 * u0 + 5.0 * up1) - up2)

    d1_0 = (um2 - 2.0 * um1) + u0
    d2_0 = (um2 - 4.0 * um1) + 3.0 * u0
    beta0 = (13.0 / 12.0) * (d1_0 * d1_0) + 0.25 * (d2_0 * d2_0)

    d1_1 = (um1 - 2.0 * u0) + up1
    d2_1 = um1 - up1
    beta1 = (13.0 / 12.0) * (d1_1 * d1_1) + 0.25 * (d2_1 * d2_1)

    d1_2 = (u0 - 2.0 * up1) + up2
    d2_2 = (3.0 * u0 - 4.0 * up1) + up2
    beta2 = (13.0 / 12.0) * (d1_2 * d1_2) + 0.25 * (d2_2 * d2_2)

    w0 = 0.1 / np.square(_WENO_EPS + beta0)
    w1 = 0.6 / np.square(_WENO_EPS + beta1)
    w2 = 0.3 / np.square(_WENO_EPS + beta2)

    wsum = (w0 + w1) + w2
    num = (w0 * q0 + w1 * q1) + w2 * q2
    return num / wsum


def weno5(u: np.ndarray, axis: int, ng: int, n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Fifth-order WENO reconstruction at the interior faces, fused."""
    um2 = _shift(u, axis, -2, ng, n)
    um1 = _shift(u, axis, -1, ng, n)
    uc = _shift(u, axis, 0, ng, n)
    up1 = _shift(u, axis, 1, ng, n)
    up2 = _shift(u, axis, 2, ng, n)
    up3 = _shift(u, axis, 3, ng, n)

    left = weno5_edge(um2, um1, uc, up1, up2)
    right = weno5_edge(up3, up2, up1, uc, um1)
    return left, right


#: scheme name -> fused implementation (same keys as reconstruction.SCHEMES)
FUSED_SCHEMES = {"pcm": pcm, "plm": plm, "weno5": weno5}
