"""Pre-fused numpy kernels for the fast plane.

These are the hot reconstruction stencils of :mod:`repro.hydro.reconstruction`
(and the WENO5 advection operators of :mod:`repro.incomp.solver`) written as
straight-line numpy, with no context dispatch at all.  They exist purely for
speed: each function evaluates **exactly the same ufuncs on the same
operands** as its context-based twin, so on binary64 data the results are
bit-identical — the property the kernel-plane equivalence tests pin down.

Every stencil accepts an optional :class:`~repro.kernels.scratch.Workspace`
(``ws=``) plus a ``key`` identifying the call site; when given, all
intermediates and outputs are written through ``out=`` into preallocated
scratch buffers, removing temporary allocation from the hot loop.  ``out=``
never changes ufunc rounding and the kernels never write into their input
arrays, so results are bit-identical with or without a workspace.  Callers
that keep both returned arrays of several stencil invocations alive at once
must hand each invocation a distinct ``key``.

Consumers select them via the :attr:`~repro.kernels.fast.FastPlaneContext.fused`
flag on the active context; instrumented contexts keep the op-by-op path
(they must, since every operation feeds the counters / truncation).
The full Riemann/EOS flux pipeline built on top of these stencils lives in
:mod:`repro.kernels.flux`.
"""
from __future__ import annotations

from typing import Tuple

import numpy as np

from .scratch import out_accessor as _o

__all__ = ["FUSED_SCHEMES", "pcm", "plm", "weno5", "weno5_edge", "where"]

#: matches ``repro.hydro.reconstruction._WENO_EPS``
_WENO_EPS = 1e-6


def where(cond, a, b, out=None):
    """``np.where`` with an optional preallocated output buffer.

    ``np.where`` has no ``out=`` parameter, so the buffered form is expressed
    as two ``copyto`` calls — pure selection, bit-identical to ``np.where``.
    ``out`` may alias ``a`` or ``b`` arbitrarily (``out is b`` is the cheap
    case); any other overlap falls back to an allocating ``np.where``
    copied into ``out``.
    """
    if out is None:
        return np.where(cond, a, b)
    if out is not b and (
        out is a or np.may_share_memory(out, a) or np.may_share_memory(out, b)
    ):
        np.copyto(out, np.where(cond, a, b))
        return out
    if out is not b:
        np.copyto(out, b)
    np.copyto(out, a, where=cond)
    return out


def _shift(u: np.ndarray, axis: int, offset: int, ng: int, n: int) -> np.ndarray:
    """Cells ``i + offset`` for the face range (same indexing as the
    context-based reconstruction).  ``axis`` counts from the *trailing* two
    dimensions, so stacked ``(nblocks, nx, ny)`` batches work unchanged."""
    start = ng - 1 + offset
    stop = start + n + 1
    if axis == 0:
        return u[..., start:stop, :]
    return u[..., :, start:stop]


def pcm(u: np.ndarray, axis: int, ng: int, n: int, ws=None, key=()) -> Tuple[np.ndarray, np.ndarray]:
    """Piecewise-constant reconstruction (pure data movement; the returned
    arrays are views of ``u``, so no scratch is ever needed)."""
    return _shift(u, axis, 0, ng, n), _shift(u, axis, 1, ng, n)


def _minmod(a: np.ndarray, b: np.ndarray, ws=None, key=()) -> np.ndarray:
    """minmod(a, b), fused: 0 where signs differ, else the smaller magnitude.

    The returned array never aliases ``a`` or ``b``.
    """
    o = _o(ws)
    shp = a.shape
    ab = np.multiply(a, b, out=o((*key, "ab"), shp))
    same_sign = np.greater(ab, 0.0, out=o((*key, "ss"), shp, bool))
    absa = np.abs(a, out=o((*key, "absa"), shp))
    absb = np.abs(b, out=o((*key, "absb"), shp))
    lt = np.less(absa, absb, out=o((*key, "lt"), shp, bool))
    mag = where(lt, a, b, out=ab)  # ab's value is consumed; reuse its storage
    # zero out where the signs differ — identical to where(same_sign, mag, 0)
    np.logical_not(same_sign, out=same_sign)
    np.copyto(mag, 0.0, where=same_sign)
    return mag


def plm(u: np.ndarray, axis: int, ng: int, n: int, ws=None, key=()) -> Tuple[np.ndarray, np.ndarray]:
    """Piecewise-linear (minmod-limited) reconstruction, fused."""
    o = _o(ws)
    um1 = _shift(u, axis, -1, ng, n)
    uc = _shift(u, axis, 0, ng, n)
    up1 = _shift(u, axis, 1, ng, n)
    up2 = _shift(u, axis, 2, ng, n)
    shp = uc.shape

    dl = np.subtract(uc, um1, out=o((*key, "dl"), shp))
    dr = np.subtract(up1, uc, out=o((*key, "dr"), shp))
    slope_left = _minmod(dl, dr, ws, (*key, "ml"))

    dl2 = np.subtract(up1, uc, out=dl)
    dr2 = np.subtract(up2, up1, out=dr)
    slope_right = _minmod(dl2, dr2, ws, (*key, "mr"))

    np.multiply(0.5, slope_left, out=slope_left)
    left = np.add(uc, slope_left, out=o((*key, "left"), shp))
    np.multiply(0.5, slope_right, out=slope_right)
    right = np.subtract(up1, slope_right, out=o((*key, "right"), shp))
    return left, right


def weno5_edge(um2, um1, u0, up1, up2, ws=None, key=(), out=None) -> np.ndarray:
    """Jiang–Shu WENO5 right-edge value of cell 0, fused.

    The association of every sum/product mirrors
    ``repro.hydro.reconstruction._weno5_edge`` term for term — do not
    "simplify" the algebra here, the parenthesisation is the contract.
    ``out`` (optional) receives the result; it may alias any *input* (the
    final division reads only scratch), but not the workspace buffers of
    this ``key``.
    """
    o = _o(ws)
    shp = np.shape(u0)

    # candidate polynomials
    q0 = np.multiply(2.0, um2, out=o((*key, "q0"), shp))
    t = np.multiply(7.0, um1, out=o((*key, "t"), shp))
    np.subtract(q0, t, out=q0)
    t = np.multiply(11.0, u0, out=t)
    np.add(q0, t, out=q0)
    np.multiply(1.0 / 6.0, q0, out=q0)

    q1 = np.multiply(5.0, u0, out=o((*key, "q1"), shp))
    np.subtract(q1, um1, out=q1)
    t = np.multiply(2.0, up1, out=t)
    np.add(q1, t, out=q1)
    np.multiply(1.0 / 6.0, q1, out=q1)

    q2 = np.multiply(2.0, u0, out=o((*key, "q2"), shp))
    t = np.multiply(5.0, up1, out=t)
    np.add(q2, t, out=q2)
    np.subtract(q2, up2, out=q2)
    np.multiply(1.0 / 6.0, q2, out=q2)

    # smoothness indicators: beta_k = 13/12 d1^2 + 1/4 d2^2
    t2 = o((*key, "t2"), shp)
    d1 = np.multiply(2.0, um1, out=t)
    d1 = np.subtract(um2, d1, out=d1)
    d1 = np.add(d1, u0, out=d1)
    beta0 = np.multiply(d1, d1, out=o((*key, "b0"), shp))
    np.multiply(13.0 / 12.0, beta0, out=beta0)
    d2 = np.multiply(4.0, um1, out=t)
    d2 = np.subtract(um2, d2, out=d2)
    u3 = np.multiply(3.0, u0, out=t2)
    d2 = np.add(d2, u3, out=d2)
    sq = np.multiply(d2, d2, out=d2)
    np.multiply(0.25, sq, out=sq)
    np.add(beta0, sq, out=beta0)

    d1 = np.multiply(2.0, u0, out=t)
    d1 = np.subtract(um1, d1, out=d1)
    d1 = np.add(d1, up1, out=d1)
    beta1 = np.multiply(d1, d1, out=o((*key, "b1"), shp))
    np.multiply(13.0 / 12.0, beta1, out=beta1)
    d2 = np.subtract(um1, up1, out=t)
    sq = np.multiply(d2, d2, out=d2)
    np.multiply(0.25, sq, out=sq)
    np.add(beta1, sq, out=beta1)

    d1 = np.multiply(2.0, up1, out=t)
    d1 = np.subtract(u0, d1, out=d1)
    d1 = np.add(d1, up2, out=d1)
    beta2 = np.multiply(d1, d1, out=o((*key, "b2"), shp))
    np.multiply(13.0 / 12.0, beta2, out=beta2)
    a3 = np.multiply(3.0, u0, out=t)
    b4 = np.multiply(4.0, up1, out=t2)
    d2 = np.subtract(a3, b4, out=a3)
    d2 = np.add(d2, up2, out=d2)
    sq = np.multiply(d2, d2, out=d2)
    np.multiply(0.25, sq, out=sq)
    np.add(beta2, sq, out=beta2)

    # nonlinear weights: w_k = c_k / (eps + beta_k)^2
    np.add(_WENO_EPS, beta0, out=beta0)
    np.square(beta0, out=beta0)
    w0 = np.divide(0.1, beta0, out=beta0)
    np.add(_WENO_EPS, beta1, out=beta1)
    np.square(beta1, out=beta1)
    w1 = np.divide(0.6, beta1, out=beta1)
    np.add(_WENO_EPS, beta2, out=beta2)
    np.square(beta2, out=beta2)
    w2 = np.divide(0.3, beta2, out=beta2)

    wsum = np.add(w0, w1, out=t)
    np.add(wsum, w2, out=wsum)
    num = np.multiply(w0, q0, out=q0)
    t2 = np.multiply(w1, q1, out=q1)
    np.add(num, t2, out=num)
    t2 = np.multiply(w2, q2, out=q2)
    np.add(num, t2, out=num)
    if out is None:
        out = o((*key, "res"), shp)
    return np.divide(num, wsum, out=out)


def weno5(u: np.ndarray, axis: int, ng: int, n: int, ws=None, key=()) -> Tuple[np.ndarray, np.ndarray]:
    """Fifth-order WENO reconstruction at the interior faces, fused."""
    um2 = _shift(u, axis, -2, ng, n)
    um1 = _shift(u, axis, -1, ng, n)
    uc = _shift(u, axis, 0, ng, n)
    up1 = _shift(u, axis, 1, ng, n)
    up2 = _shift(u, axis, 2, ng, n)
    up3 = _shift(u, axis, 3, ng, n)

    left = weno5_edge(um2, um1, uc, up1, up2, ws, (*key, "L"))
    right = weno5_edge(up3, up2, up1, uc, um1, ws, (*key, "R"))
    return left, right


#: scheme name -> fused implementation (same keys as reconstruction.SCHEMES)
FUSED_SCHEMES = {"pcm": pcm, "plm": plm, "weno5": weno5}
