"""Fused grid plane: batched twins of the grid-side hot loops.

PRs 4–6 fused the flux pipeline, which leaves fast-plane runs dominated by
the *grid* side: guard-cell filling walks every leaf x side x variable in
Python re-deriving the tree topology each call, ``compute_dt`` loops blocks
with fresh temporaries, and the regrid estimators evaluate per block.  This
module provides their fused twins:

* :class:`GuardFillPlan` — a precomputed guard-fill schedule for one AMR
  topology.  Neighbour lookup, boundary classification and all slice
  arithmetic happen once per topology (the plan is rebuilt only when the
  tree changes, tracked by ``AMRGrid._topology_epoch``); executing the plan
  is a flat list of direct array copies.  Every guard strip reads only
  *interior* cells of its source block (verified per neighbour kind below)
  and guard filling never writes interiors, so the fill is order-independent
  and the plan is bit-identical to the per-block reference loop by
  construction — the copies move exactly the same values.

* :func:`compute_dt` — the CFL reduction over all leaves stacked into one
  ``(nblocks, nx, ny)`` kernel invocation, reusing the fused EOS sound-speed
  helper of :mod:`repro.kernels.flux` (all blocks share one cell shape, so
  the stack spans refinement levels).  ``dx``/``dy`` are applied per block
  — block-bounds arithmetic can make them differ in the last bit even
  within one level — and the max/min reductions are exact (order
  independent), so the batched reduction matches the per-block loop
  bitwise.

* :func:`pad_edge` — a scratch-buffered twin of ``np.pad(f, n,
  mode="edge")`` for the bubble solver's stencil paddings.

The stacked refinement estimators live next to the estimators themselves in
:mod:`repro.amr.refinement` (``stacked_block_errors``).  All of this is
plain binary64 numpy outside any numerics context, so it is safe on every
kernel plane and leaves instrumented counters byte-identical.  The
``RAPTOR_FAST_NO_GRID`` environment switch
(:func:`repro.kernels.scratch.grid_plane_enabled`) restores the per-block
reference paths for benchmarking and differential testing.
"""
from __future__ import annotations

from functools import partial
from typing import Dict, List, Sequence

import numpy as np

from . import flux
from .scratch import out_accessor

__all__ = ["GuardFillPlan", "compute_dt", "pad_edge"]

_SIDES = ("-x", "+x", "-y", "+y")


def _fill_corners(data: np.ndarray, ng: int, nxe: int, nye: int) -> None:
    """Corner guard regions take the nearest interior value (the solvers
    only consume face guards; corners merely need to be finite)."""
    data[0:ng, 0:ng] = data[ng, ng]
    data[0:ng, nye:] = data[ng, nye - 1]
    data[nxe:, 0:ng] = data[nxe - 1, ng]
    data[nxe:, nye:] = data[nxe - 1, nye - 1]


def _prolong_strip(dst: np.ndarray, patch: np.ndarray, sub, prolong) -> None:
    """Coarse-neighbour strip: prolong the coarse patch, keep the face-side
    ``ng`` rows/columns (``sub``)."""
    np.copyto(dst, prolong(patch)[sub])


def _restrict_strip(dst: np.ndarray, pl: np.ndarray, ph: np.ndarray,
                    axis: int, restrict) -> None:
    """Fine-neighbour strip: restrict the two fine patches into the lower /
    upper half of the strip along the transverse ``axis``."""
    half = dst.shape[axis] // 2
    if axis == 1:
        np.copyto(dst[:, :half], restrict(pl))
        np.copyto(dst[:, half:], restrict(ph))
    else:
        np.copyto(dst[:half, :], restrict(pl))
        np.copyto(dst[half:, :], restrict(ph))


class GuardFillPlan:
    """Precomputed guard-fill schedule for one AMR topology.

    Built from a grid's current leaf set; holds, per variable, a flat list
    of zero-argument operations (bound to views of the live block arrays)
    that together fill every guard cell of every leaf:

    * ``same``      — one ``np.copyto`` from the neighbour's interior edge;
    * ``boundary``  — outflow: broadcast-copy of the interior edge row/
      column; reflect: copy (or ``np.negative`` for the flipped normal
      velocity) of the reversed interior edge view;
    * ``coarse``    — prolong a coarse interior patch, copy the face side;
    * ``fine``      — restrict two fine interior patches into the strip
      halves;
    * corners       — nearest interior value.

    Because every operation *reads* interior cells only and *writes* guard
    cells only, the operations commute and the plan reproduces the
    reference per-block fill bitwise in any execution order.  Block arrays
    are allocated once and mutated in place, so the captured views stay
    valid until the tree topology changes — the owning grid compares
    :attr:`epoch` against its ``_topology_epoch`` and rebuilds the plan
    after any refine/derefine.
    """

    __slots__ = ("epoch", "n_blocks", "kind_counts", "_ops")

    def __init__(self, grid) -> None:
        # imported lazily so repro.kernels never depends on repro.amr at
        # import time (the amr package imports this module)
        from ..amr.refinement import prolong, restrict

        ng, nxb, nyb = grid.ng, grid.nxb, grid.nyb
        self.epoch = grid._topology_epoch
        keys = grid.sorted_keys()
        self.n_blocks = len(keys)
        self.kind_counts = {"boundary": 0, "same": 0, "coarse": 0, "fine": 0}
        ops: Dict[str, List] = {name: [] for name in grid.variables}

        dst_slices = {
            "-x": (slice(0, ng), slice(ng, ng + nyb)),
            "+x": (slice(ng + nxb, None), slice(ng, ng + nyb)),
            "-y": (slice(ng, ng + nxb), slice(0, ng)),
            "+y": (slice(ng, ng + nxb), slice(ng + nyb, None)),
        }

        for key in keys:
            block = grid.leaves[key]
            for side in _SIDES:
                kind, info = grid.neighbor(key, side)
                self.kind_counts[kind] += 1
                for name in grid.variables:
                    dst = block.data[name][dst_slices[side]]
                    ops[name].append(self._strip_op(
                        grid, block, name, side, kind, info, dst,
                        prolong, restrict,
                    ))
            nxe, nye = ng + nxb, ng + nyb
            for name in grid.variables:
                ops[name].append(partial(_fill_corners, block.data[name], ng, nxe, nye))
        self._ops = ops

    @staticmethod
    def _strip_op(grid, block, name, side, kind, info, dst, prolong, restrict):
        """One side strip as a bound zero-argument operation.

        The source slices below mirror ``AMRGrid._neighbor_strip`` /
        ``_boundary_strip`` / ``_coarse_strip`` / ``_fine_strip`` exactly.
        """
        ng, nxb, nyb = grid.ng, grid.nxb, grid.nyb
        data = block.data[name]

        if kind == "same":
            src = grid.leaves[info].data[name]
            if side == "-x":
                view = src[nxb:nxb + ng, ng:ng + nyb]
            elif side == "+x":
                view = src[ng:2 * ng, ng:ng + nyb]
            elif side == "-y":
                view = src[ng:ng + nxb, nyb:nyb + ng]
            else:
                view = src[ng:ng + nxb, ng:2 * ng]
            return partial(np.copyto, dst, view)

        if kind == "boundary":
            axis = "x" if side in ("-x", "+x") else "y"
            bkind = grid.boundary_x if axis == "x" else grid.boundary_y
            if bkind == "outflow":
                if side == "-x":
                    edge = data[ng:ng + 1, ng:ng + nyb]
                elif side == "+x":
                    edge = data[ng + nxb - 1:ng + nxb, ng:ng + nyb]
                elif side == "-y":
                    edge = data[ng:ng + nxb, ng:ng + 1]
                else:
                    edge = data[ng:ng + nxb, ng + nyb - 1:ng + nyb]
                return partial(np.copyto, dst, edge)  # broadcasts across ng
            # reflect: mirrored interior edge, sign-flipped for the normal
            # velocity of this axis
            if side == "-x":
                view = data[ng:2 * ng, ng:ng + nyb][::-1, :]
            elif side == "+x":
                view = data[nxb:nxb + ng, ng:ng + nyb][::-1, :]
            elif side == "-y":
                view = data[ng:ng + nxb, ng:2 * ng][:, ::-1]
            else:
                view = data[ng:ng + nxb, nyb:nyb + ng][:, ::-1]
            if name == grid.reflect_vars.get(axis):
                return partial(np.negative, view, dst)
            return partial(np.copyto, dst, view)

        if kind == "coarse":
            src = grid.leaves[info].data[name]
            ngc = (ng + 1) // 2  # coarse cells covering ng fine cells
            _, ix, iy = block.key
            if side in ("-x", "+x"):
                j0 = ng + (iy % 2) * (nyb // 2)
                if side == "-x":
                    patch = src[ng + nxb - ngc:ng + nxb, j0:j0 + nyb // 2]
                    sub = (slice(-ng, None), slice(None))
                else:
                    patch = src[ng:ng + ngc, j0:j0 + nyb // 2]
                    sub = (slice(None, ng), slice(None))
            else:
                i0 = ng + (ix % 2) * (nxb // 2)
                if side == "-y":
                    patch = src[i0:i0 + nxb // 2, ng + nyb - ngc:ng + nyb]
                    sub = (slice(None), slice(-ng, None))
                else:
                    patch = src[i0:i0 + nxb // 2, ng:ng + ngc]
                    sub = (slice(None), slice(None, ng))
            return partial(_prolong_strip, dst, patch, sub, prolong)

        # fine: two finer neighbours, ordered along the transverse direction
        lo_key, hi_key = sorted(info, key=lambda k: (k[2], k[1]))
        lo = grid.leaves[lo_key].data[name]
        hi = grid.leaves[hi_key].data[name]
        if side == "-x":
            pl = lo[ng + nxb - 2 * ng:ng + nxb, ng:ng + nyb]
            ph = hi[ng + nxb - 2 * ng:ng + nxb, ng:ng + nyb]
        elif side == "+x":
            pl = lo[ng:3 * ng, ng:ng + nyb]
            ph = hi[ng:3 * ng, ng:ng + nyb]
        elif side == "-y":
            pl = lo[ng:ng + nxb, ng + nyb - 2 * ng:ng + nyb]
            ph = hi[ng:ng + nxb, ng + nyb - 2 * ng:ng + nyb]
        else:
            pl = lo[ng:ng + nxb, ng:3 * ng]
            ph = hi[ng:ng + nxb, ng:3 * ng]
        axis = 1 if side in ("-x", "+x") else 0
        return partial(_restrict_strip, dst, pl, ph, axis, restrict)

    # ------------------------------------------------------------------
    def fill(self, names: Sequence[str]) -> None:
        """Fill every guard cell of every leaf for ``names``."""
        ops = self._ops
        for name in names:
            for op in ops[name]:
                op()

    @property
    def n_ops(self) -> int:
        """Total operations across all variables (diagnostic)."""
        return sum(len(v) for v in self._ops.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GuardFillPlan(epoch={self.epoch}, blocks={self.n_blocks}, "
            f"ops={self.n_ops}, kinds={self.kind_counts})"
        )


# ---------------------------------------------------------------------------
# batched CFL time step
# ---------------------------------------------------------------------------
def compute_dt(grid, eos, cfl: float, ws=None) -> float:
    """Global CFL time step over all leaves, as one stacked reduction.

    Bit-identical to the per-block reference loop
    (``HydroSolver._compute_dt_per_block``): the floors, the fused
    sound-speed expression (``flux.eos_sound_speed``) and the ``|v| + c``
    combination are the same ufunc sequences applied to the same values,
    ``dx``/``dy`` divide per block (they may differ in the last bit even
    within a level), and the max/min reductions are exact, hence order
    independent.
    """
    keys = grid.sorted_keys()
    n = len(keys)
    o = out_accessor(ws)
    shape = (n, grid.nxb, grid.nyb)

    def buf(name, shp=shape):
        b = o(("dt", name), shp)
        return b if b is not None else np.empty(shp)

    dens = buf("dens")
    velx = buf("velx")
    vely = buf("vely")
    pres = buf("pres")
    dxs = buf("dxs", (n,))
    dys = buf("dys", (n,))
    for i, key in enumerate(keys):
        block = grid.leaves[key]
        np.copyto(dens[i], block.interior_view("dens"))
        np.copyto(velx[i], block.interior_view("velx"))
        np.copyto(vely[i], block.interior_view("vely"))
        np.copyto(pres[i], block.interior_view("pres"))
        dxs[i] = block.dx
        dys[i] = block.dy

    dens_f = np.maximum(dens, eos.density_floor, out=dens)
    pres_f = np.maximum(pres, eos.pressure_floor, out=pres)
    cs = flux.eos_sound_speed(dens_f, pres_f, eos.gamma, ws, ("dt", "cs"))
    ax = np.abs(velx, out=velx)
    np.add(ax, cs, out=ax)
    ay = np.abs(vely, out=vely)
    np.add(ay, cs, out=ay)
    sx = np.max(ax, axis=(1, 2), out=buf("sx", (n,)))
    sy = np.max(ay, axis=(1, 2), out=buf("sy", (n,)))
    np.divide(sx, dxs, out=sx)
    np.divide(sy, dys, out=sy)
    speed = np.maximum(sx, sy, out=sx)
    np.maximum(speed, 1e-30, out=speed)
    np.divide(1.0, speed, out=speed)
    return cfl * float(np.min(speed))


# ---------------------------------------------------------------------------
# edge padding (bubble-solver stencils)
# ---------------------------------------------------------------------------
def pad_edge(f: np.ndarray, n: int, ws=None, key=("pad",)) -> np.ndarray:
    """Scratch-buffered twin of ``np.pad(f, n, mode="edge")`` (2-D).

    Pure copies, so the result is bitwise identical to ``np.pad``.  The
    returned array is a workspace buffer when ``ws`` is given: it stays
    valid only until the next ``pad_edge`` call with the same ``key`` (the
    solver stencils consume the padding within one operator evaluation, and
    simultaneously-live paddings use distinct keys).
    """
    f = np.asarray(f)
    nx, ny = f.shape
    o = out_accessor(ws)
    out = o(key, (nx + 2 * n, ny + 2 * n), f.dtype)
    if out is None:
        out = np.empty((nx + 2 * n, ny + 2 * n), dtype=f.dtype)
    np.copyto(out[n:n + nx, n:n + ny], f)
    out[:n, n:n + ny] = f[0:1, :]
    out[n + nx:, n:n + ny] = f[nx - 1:nx, :]
    out[:, :n] = out[:, n:n + 1]
    out[:, n + ny:] = out[:, n + ny - 1:n + ny]
    return out
