"""The fused bubble plane: scratch-buffered twins of the incompressible
solver's hot operators.

PRs 4–7 fused the compressible hot path (reconstruction, Riemann/EOS,
guard fills); the rising-bubble solver of :mod:`repro.incomp` — the
paper's Figure 1 showcase — still ran its advection, diffusion, level-set
and projection operators op-by-op through per-op context dispatch on
every plane.  This module closes that gap with straight-line numpy twins
of every hot bubble operator, threading all intermediates through a
:class:`~repro.kernels.scratch.Workspace` exactly like
:mod:`repro.kernels.flux` does, gated by ``RAPTOR_FAST_NO_BUBBLE``
(:func:`~repro.kernels.scratch.bubble_plane_enabled`).

Two families live here:

* **binary64 fast twins** — dispatched when the active context carries the
  ``fused`` flag (:class:`~repro.kernels.fast.FastPlaneContext`).  Each
  evaluates exactly the same ufuncs on the same operands as its op-by-op
  twin, so the results are bit-identical.  The context-free operators
  (Heaviside/delta/material fields, curvature, surface tension, buoyancy,
  reinitialisation, the :func:`np.gradient` twin of the projection step)
  never touch a context at all, so — like the fused grid plane — they run
  on *every* plane when the knob is on and instrumented counters stay
  byte-identical.
* **truncating twins** (``*_trunc``) — dispatched on ``fused_trunc``
  (:class:`~repro.kernels.trunc.TruncFastPlaneContext`).  Built on
  :func:`~repro.kernels.trunc.quantize_into`, they insert a vectorised
  quantisation after every arithmetic op — the exact boundaries the
  optimized :class:`~repro.core.opmode.TruncatedContext` rounds at —
  while ``where``/comparison/constant fills stay quantise-closed.
  Constants are computed in binary64 first and quantised once, matching
  ``TruncatedContext.const``.

Boundary subtlety the twins preserve bit-for-bit: the *momentum* upwind
and WENO5 stencils of ``incomp/solver.py`` are edge-padded (walls), while
the *level-set* module's ``_upwind_derivative`` and ``reinitialize`` use
``np.roll`` (periodic wrap).  :func:`upwind_derivative` therefore takes an
explicit ``boundary`` argument (``"edge"`` consumes a caller-supplied
padding from :func:`repro.kernels.grid.pad_edge`; ``"wrap"`` rolls into
scratch), and :func:`reinitialize` keeps the roll-based Godunov loop —
including its subtract-then-*divide* spacing order, which is not the same
bits as multiplying by a reciprocal.

Workspace lifecycle: every function takes ``ws=`` plus a call-site ``key``
and derives all internal buffer keys from it, so simultaneously-live
results (``adv_u`` vs ``adv_v``, the truncated and full-precision sides of
a blended evaluation) never alias as long as call sites pass distinct
keys; truncating twins additionally prefix their keys with ``"T"`` so a
blended cell can hold both evaluations at once.  Results that become
solver *state* (the advected/reinitialised level set) are fresh
allocations; everything else, including returned operator fields, lives in
scratch and is only valid until the same call site runs again.
"""
from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.fpformat import FPFormat
from ..core.quantize import RoundingMode
from . import fused
from .fused import where
from .scratch import Workspace
from .scratch import out_accessor as _o
from .trunc import _Q, quantize_into
from .trunc import weno5_edge as _trunc_weno5_edge

__all__ = [
    "roll1",
    "gradient_axis",
    "heaviside",
    "delta",
    "material_field",
    "curvature",
    "reinitialize",
    "surface_tension",
    "buoyancy",
    "weno5_derivative",
    "weno5_derivative_trunc",
    "upwind_derivative",
    "upwind_derivative_trunc",
    "advection_term",
    "advection_term_trunc",
    "diffusion_term",
    "diffusion_term_trunc",
    "levelset_advect",
    "levelset_advect_trunc",
]


# ---------------------------------------------------------------------------
# data-movement helpers
# ---------------------------------------------------------------------------
def roll1(arr: np.ndarray, shift: int, axis: int, out: Optional[np.ndarray] = None) -> np.ndarray:
    """``np.roll(arr, shift, axis)`` for 2-D arrays and ``shift`` in {±1},
    into a preallocated buffer.  Pure data movement — bitwise trivial."""
    if out is None:
        return np.roll(arr, shift, axis)
    if axis == 0:
        if shift == 1:
            out[1:, :] = arr[:-1, :]
            out[0, :] = arr[-1, :]
        else:
            out[:-1, :] = arr[1:, :]
            out[-1, :] = arr[0, :]
    else:
        if shift == 1:
            out[:, 1:] = arr[:, :-1]
            out[:, 0] = arr[:, -1]
        else:
            out[:, :-1] = arr[:, 1:]
            out[:, -1] = arr[:, 0]
    return out


def gradient_axis(f: np.ndarray, spacing: float, axis: int, ws: Optional[Workspace] = None,
                  key=("grad",)) -> np.ndarray:
    """``np.gradient(f, spacing, axis=axis)`` (default ``edge_order=1``),
    bit-identical: second-order central differences in the interior —
    subtract, then divide by ``2. * spacing`` — and first-order one-sided
    differences at the two boundary slices."""
    o = _o(ws)
    out = o((*key, "res"), f.shape)
    if out is None:
        out = np.empty_like(np.asarray(f, dtype=np.float64))
    if axis == 0:
        np.subtract(f[2:, :], f[:-2, :], out=out[1:-1, :])
        np.divide(out[1:-1, :], 2.0 * spacing, out=out[1:-1, :])
        np.subtract(f[1, :], f[0, :], out=out[0, :])
        np.divide(out[0, :], spacing, out=out[0, :])
        np.subtract(f[-1, :], f[-2, :], out=out[-1, :])
        np.divide(out[-1, :], spacing, out=out[-1, :])
    else:
        np.subtract(f[:, 2:], f[:, :-2], out=out[:, 1:-1])
        np.divide(out[:, 1:-1], 2.0 * spacing, out=out[:, 1:-1])
        np.subtract(f[:, 1], f[:, 0], out=out[:, 0])
        np.divide(out[:, 0], spacing, out=out[:, 0])
        np.subtract(f[:, -1], f[:, -2], out=out[:, -1])
        np.divide(out[:, -1], spacing, out=out[:, -1])
    return out


# ---------------------------------------------------------------------------
# phase indicators and material properties (context-free, every plane)
# ---------------------------------------------------------------------------
def heaviside(p: np.ndarray, eps: float, ws: Optional[Workspace] = None, key=("hv",)) -> np.ndarray:
    """Twin of ``LevelSet.heaviside``:
    ``clip(where(p > eps, 1, where(p < -eps, 0, h)), 0, 1)`` with
    ``h = 0.5 * (1 + p/eps + sin(pi*p/eps)/pi)``."""
    o = _o(ws)
    shp = p.shape
    t = np.divide(p, eps, out=o((*key, "t"), shp))
    h = np.add(1.0, t, out=t)
    s = np.multiply(np.pi, p, out=o((*key, "s"), shp))
    s = np.divide(s, eps, out=s)
    s = np.sin(s, out=s)
    s = np.divide(s, np.pi, out=s)
    h = np.add(h, s, out=h)
    h = np.multiply(0.5, h, out=h)
    # the two where() branches are disjoint, so masked fills reproduce the
    # nested np.where exactly
    cond = np.less(p, -eps, out=o((*key, "c"), shp, bool))
    if cond is None:
        cond = np.less(p, -eps)
    np.copyto(h, 0.0, where=cond)
    cond = np.greater(p, eps, out=cond)
    np.copyto(h, 1.0, where=cond)
    return np.clip(h, 0.0, 1.0, out=h)


def delta(p: np.ndarray, eps: float, ws: Optional[Workspace] = None, key=("dl",)) -> np.ndarray:
    """Twin of ``LevelSet.delta``: ``where(|p| <= eps, d, 0)`` with
    ``d = 0.5/eps * (1 + cos(pi*p/eps))``."""
    o = _o(ws)
    shp = p.shape
    d = np.multiply(np.pi, p, out=o((*key, "d"), shp))
    d = np.divide(d, eps, out=d)
    d = np.cos(d, out=d)
    d = np.add(1.0, d, out=d)
    d = np.multiply(0.5 / eps, d, out=d)
    a = np.abs(p, out=o((*key, "a"), shp))
    outside = np.greater(a, eps, out=o((*key, "c"), shp, bool))
    if outside is None:
        outside = np.greater(a, eps)
    np.copyto(d, 0.0, where=outside)
    return d


def material_field(p: np.ndarray, eps: float, a_liquid: float, a_gas: float,
                   ws: Optional[Workspace] = None, key=("mat",)) -> np.ndarray:
    """Twin of ``LevelSet.density`` / ``LevelSet.viscosity``:
    ``a_liquid + (a_gas - a_liquid) * heaviside(p)``."""
    h = heaviside(p, eps, ws=ws, key=(*key, "h"))
    h = np.multiply(a_gas - a_liquid, h, out=h)
    return np.add(a_liquid, h, out=h)


def curvature(phi: np.ndarray, dx: float, dy: float, ws: Optional[Workspace] = None,
              key=("curv",)) -> np.ndarray:
    """Twin of ``LevelSet.curvature``: roll-based central differences,
    kappa = div(grad phi / |grad phi|)."""
    o = _o(ws)
    shp = phi.shape
    rm = roll1(phi, -1, 0, o((*key, "r1"), shp))
    rp = roll1(phi, 1, 0, o((*key, "r2"), shp))
    px = np.subtract(rm, rp, out=o((*key, "px"), shp))
    px = np.divide(px, 2 * dx, out=px)
    rm = roll1(phi, -1, 1, o((*key, "r1"), shp))
    rp = roll1(phi, 1, 1, o((*key, "r2"), shp))
    py = np.subtract(rm, rp, out=o((*key, "py"), shp))
    py = np.divide(py, 2 * dy, out=py)
    mag = np.square(px, out=o((*key, "m"), shp))
    t = np.square(py, out=o((*key, "t"), shp))
    mag = np.add(mag, t, out=mag)
    mag = np.sqrt(mag, out=mag)
    mag = np.add(mag, 1e-12, out=mag)
    nx = np.divide(px, mag, out=px)
    ny = np.divide(py, mag, out=py)
    rm = roll1(nx, -1, 0, o((*key, "r1"), shp))
    rp = roll1(nx, 1, 0, o((*key, "r2"), shp))
    tx = np.subtract(rm, rp, out=o((*key, "tx"), shp))
    tx = np.divide(tx, 2 * dx, out=tx)
    rm = roll1(ny, -1, 1, o((*key, "r1"), shp))
    rp = roll1(ny, 1, 1, o((*key, "r2"), shp))
    ty = np.subtract(rm, rp, out=o((*key, "ty"), shp))
    ty = np.divide(ty, 2 * dy, out=ty)
    res = np.add(tx, ty, out=o((*key, "res"), shp))
    return res if res is not None else np.add(tx, ty)


# ---------------------------------------------------------------------------
# reinitialisation (context-free Godunov Hamiltonian loop, every plane)
# ---------------------------------------------------------------------------
def reinitialize(phi: np.ndarray, dx: float, dy: float, iterations: int = 10,
                 cfl: float = 0.3, ws: Optional[Workspace] = None, key=("reinit",)) -> np.ndarray:
    """Twin of ``LevelSet.reinitialize``: the Sussman PDE
    ``phi_tau = S(phi0) (1 - |grad phi|)`` with the roll-based Godunov
    Hamiltonian.  The spacing enters by *division* (not reciprocal
    multiplication) and the update is the left-associated
    ``phi - (dtau * sgn) * (grad - 1)``, both preserved bit-for-bit.
    Returns a fresh array (it becomes ``LevelSet.phi``); ``iterations=0``
    returns ``phi`` itself, like the reference loop."""
    if iterations <= 0:
        return phi
    o = _o(ws)
    shp = phi.shape
    # S(phi0) and the positivity mask depend only on the original field;
    # the reference recomputes dtau*sgn and phi0 > 0 per iteration, but
    # both are loop-invariant binary64 values, so hoisting them is exact
    sgn = np.square(phi, out=o((*key, "sgn"), shp))
    sgn = np.add(sgn, max(dx, dy) ** 2, out=sgn)
    sgn = np.sqrt(sgn, out=sgn)
    sgn = np.divide(phi, sgn, out=sgn)
    dtau = cfl * min(dx, dy)
    dsgn = np.multiply(dtau, sgn, out=sgn)
    pos = np.greater(phi, 0, out=o((*key, "pos"), shp, bool))
    if pos is None:
        pos = np.greater(phi, 0)

    cur = phi
    for it in range(iterations):
        r = roll1(cur, 1, 0, o((*key, "r"), shp))
        dxm = np.subtract(cur, r, out=o((*key, "dxm"), shp))
        dxm = np.divide(dxm, dx, out=dxm)
        r = roll1(cur, -1, 0, o((*key, "r"), shp))
        dxp = np.subtract(r, cur, out=o((*key, "dxp"), shp))
        dxp = np.divide(dxp, dx, out=dxp)
        r = roll1(cur, 1, 1, o((*key, "r"), shp))
        dym = np.subtract(cur, r, out=o((*key, "dym"), shp))
        dym = np.divide(dym, dy, out=dym)
        r = roll1(cur, -1, 1, o((*key, "r"), shp))
        dyp = np.subtract(r, cur, out=o((*key, "dyp"), shp))
        dyp = np.divide(dyp, dy, out=dyp)

        # Godunov Hamiltonian: max(max(a,0)^2, min(b,0)^2) per direction
        t1 = np.maximum(dxm, 0.0, out=o((*key, "t1"), shp))
        t1 = np.square(t1, out=t1)
        t2 = np.minimum(dxp, 0.0, out=o((*key, "t2"), shp))
        t2 = np.square(t2, out=t2)
        gp = np.maximum(t1, t2, out=o((*key, "gp"), shp))
        t1 = np.maximum(dym, 0.0, out=t1)
        t1 = np.square(t1, out=t1)
        t2 = np.minimum(dyp, 0.0, out=t2)
        t2 = np.square(t2, out=t2)
        t1 = np.maximum(t1, t2, out=t1)
        gp = np.add(gp, t1, out=gp)
        gp = np.sqrt(gp, out=gp)

        t1 = np.minimum(dxm, 0.0, out=t1)
        t1 = np.square(t1, out=t1)
        t2 = np.maximum(dxp, 0.0, out=t2)
        t2 = np.square(t2, out=t2)
        gn = np.maximum(t1, t2, out=o((*key, "gn"), shp))
        t1 = np.minimum(dym, 0.0, out=t1)
        t1 = np.square(t1, out=t1)
        t2 = np.maximum(dyp, 0.0, out=t2)
        t2 = np.square(t2, out=t2)
        t1 = np.maximum(t1, t2, out=t1)
        gn = np.add(gn, t1, out=gn)
        gn = np.sqrt(gn, out=gn)

        grad = where(pos, gp, gn, out=o((*key, "grad"), shp))
        upd = np.subtract(grad, 1.0, out=grad)
        upd = np.multiply(dsgn, upd, out=upd)
        if it == iterations - 1:
            cur = np.subtract(cur, upd)  # fresh: becomes LevelSet.phi
        else:
            cur = np.subtract(cur, upd, out=o((*key, "phi", it % 2), shp))
    return cur


# ---------------------------------------------------------------------------
# forces (context-free, full precision on every plane)
# ---------------------------------------------------------------------------
def buoyancy(phi: np.ndarray, eps: float, gravity: float, rho_gas: float,
             ws: Optional[Workspace] = None, key=("buoy",)) -> np.ndarray:
    """Twin of ``BubbleSolver._buoyancy``: ``gravity * (1 - rho)`` with
    ``rho = material_field(phi, 1, rho_gas)``."""
    rho = material_field(phi, eps, 1.0, rho_gas, ws=ws, key=(*key, "rho"))
    t = np.subtract(1.0, rho, out=rho)
    return np.multiply(gravity, t, out=t)


def surface_tension(phi: np.ndarray, eps: float, sigma: float, dx: float, dy: float,
                    ws: Optional[Workspace] = None, key=("st",)) -> Tuple[np.ndarray, np.ndarray]:
    """Twin of ``BubbleSolver._surface_tension`` (continuum surface force):
    ``f = sigma * kappa * delta(phi) * grad(phi) / (|grad(phi)| + 1e-12)``.
    The shared ``sigma*kappa*delta`` factor is hoisted — binary64 ops are
    deterministic, so reusing it is exact."""
    kappa = curvature(phi, dx, dy, ws=ws, key=(*key, "k"))
    dl = delta(phi, eps, ws=ws, key=(*key, "d"))
    gx = gradient_axis(phi, dx, 0, ws=ws, key=(*key, "gx"))
    gy = gradient_axis(phi, dy, 1, ws=ws, key=(*key, "gy"))
    o = _o(ws)
    shp = phi.shape
    mag = np.square(gx, out=o((*key, "m"), shp))
    t = np.square(gy, out=o((*key, "t"), shp))
    mag = np.add(mag, t, out=mag)
    mag = np.sqrt(mag, out=mag)
    mag = np.add(mag, 1e-12, out=mag)
    common = np.multiply(sigma, kappa, out=kappa)
    common = np.multiply(common, dl, out=common)
    fx = np.multiply(common, gx, out=gx)
    fx = np.divide(fx, mag, out=fx)
    fy = np.multiply(common, gy, out=gy)
    fy = np.divide(fy, mag, out=fy)
    return fx, fy


# ---------------------------------------------------------------------------
# advection derivatives (truncation targets: fast + truncating twins)
# ---------------------------------------------------------------------------
def _weno_cells(padded: np.ndarray, axis: int, offset: int) -> np.ndarray:
    sl = [slice(3, -3), slice(3, -3)]
    sl[axis] = slice(3 + offset, padded.shape[axis] - 3 + offset)
    return padded[tuple(sl)]


#: stencil-argument order (indices into the (um3..up2) cell windows) for the
#: four WENO5 edge reconstructions lm / lp / rm / rp of the upwind split
_WENO_EDGE_ARGS = (
    (0, 1, 2, 3, 4),  # lm: edge(um3, um2, um1, u0, up1)
    (1, 2, 3, 4, 5),  # lp: edge(um2, um1, u0, up1, up2)
    (4, 3, 2, 1, 0),  # rm: edge(up1, u0, um1, um2, um3)
    (5, 4, 3, 2, 1),  # rp: edge(up2, up1, u0, um1, um2)
)


def _weno_stack(padded, axis, ws, key):
    """Copy the four edges' five stencil operands into one ``(5, 4, nx, ny)``
    batch so a single elementwise ``weno5_edge`` call reconstructs all four
    edges at once.  Ufuncs act elementwise, so row ``e`` of the batched
    result is bit-identical to the standalone ``edge(...)`` call it packs."""
    cells = tuple(_weno_cells(padded, axis, k) for k in (-3, -2, -1, 0, 1, 2))
    shp = cells[0].shape
    o = _o(ws)
    stack = o((*key, "st"), (5, 4) + shp)
    if stack is None:
        stack = np.empty((5, 4) + shp)
    for s in range(5):
        for e in range(4):
            np.copyto(stack[s, e], cells[_WENO_EDGE_ARGS[e][s]])
    return stack


def _weno_stack_pair(padded, ws, key):
    """Like :func:`_weno_stack`, but packs the axis-0 *and* axis-1 edge
    reconstructions of one padded field into a single ``(5, 8, nx, ny)``
    batch (rows ``2e`` / ``2e+1`` hold edge ``e`` along axis 0 / 1), so one
    ``weno5_edge`` call reconstructs all eight edges of the momentum
    advection at once."""
    cells = tuple(
        tuple(_weno_cells(padded, axis, k) for k in (-3, -2, -1, 0, 1, 2))
        for axis in (0, 1)
    )
    shp = cells[0][0].shape
    o = _o(ws)
    stack = o((*key, "st2"), (5, 8) + shp)
    if stack is None:
        stack = np.empty((5, 8) + shp)
    for s in range(5):
        for e in range(4):
            np.copyto(stack[s, 2 * e], cells[0][_WENO_EDGE_ARGS[e][s]])
            np.copyto(stack[s, 2 * e + 1], cells[1][_WENO_EDGE_ARGS[e][s]])
    return stack


def _upwind_faces_pair(edges, velx, vely, ws, key):
    """Shared upwind face selection + face difference for the pair twins:
    ``edges`` is the ``(8, nx, ny)`` batched reconstruction; returns the
    ``(2, nx, ny)`` face difference ``f_plus - f_minus`` (row 0: axis 0)."""
    o = _o(ws)
    shp = edges.shape[1:]
    vs = o((*key, "vs"), (2,) + shp)
    if vs is None:
        vs = np.empty((2,) + shp)
    np.copyto(vs[0], velx)
    np.copyto(vs[1], vely)
    up = np.greater(vs, 0.0, out=o((*key, "up"), (2,) + shp, bool))
    lm, lp, rm, rp = edges[0:2], edges[2:4], edges[4:6], edges[6:8]
    fm = where(up, lm, rm, out=o((*key, "fm"), (2,) + shp))
    fp = where(up, lp, rp, out=o((*key, "fp"), (2,) + shp))
    return np.subtract(fp, fm, out=fp)


def weno5_derivative_pair(padded: np.ndarray, velx: np.ndarray, vely: np.ndarray,
                          dx: float, dy: float,
                          ws: Optional[Workspace] = None, key=()) -> Tuple[np.ndarray, np.ndarray]:
    """Both momentum-advection WENO5 derivatives (``d f/dx``, ``d f/dy``) of
    one padded field in a single batched ``fused.weno5_edge`` call — row
    ``a`` of every elementwise intermediate carries exactly the bits of the
    standalone axis-``a`` :func:`weno5_derivative`."""
    stack = _weno_stack_pair(padded, ws, key)
    edges = fused.weno5_edge(stack[0], stack[1], stack[2], stack[3], stack[4],
                             ws=ws, key=(*key, "e"))
    d = _upwind_faces_pair(edges, velx, vely, ws, key)
    np.multiply(d[0], 1.0 / dx, out=d[0])
    np.multiply(d[1], 1.0 / dy, out=d[1])
    return d[0], d[1]


def weno5_derivative_pair_trunc(padded: np.ndarray, velx: np.ndarray, vely: np.ndarray,
                                dx: float, dy: float,
                                ws: Optional[Workspace] = None, key=(), *,
                                fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN
                                ) -> Tuple[np.ndarray, np.ndarray]:
    """Truncating twin of :func:`weno5_derivative_pair`: quantisation is
    elementwise, so the batched rows round exactly as the standalone
    :func:`weno5_derivative_trunc` calls they pack."""
    key = ("T", *key)
    q = _Q(fmt, rounding, ws)
    stack = _weno_stack_pair(padded, ws, key)
    edges = _trunc_weno5_edge(stack[0], stack[1], stack[2], stack[3], stack[4],
                              ws=ws, key=(*key, "e"), fmt=fmt, rounding=rounding)
    d = _upwind_faces_pair(edges, velx, vely, ws, key)
    d = q(d)
    np.multiply(d[0], q.const(1.0 / dx), out=d[0])
    np.multiply(d[1], q.const(1.0 / dy), out=d[1])
    d = q(d)
    return d[0], d[1]


def weno5_derivative(padded: np.ndarray, vel: np.ndarray, spacing: float, axis: int,
                     ws: Optional[Workspace] = None, key=()) -> np.ndarray:
    """Binary64 twin of ``BubbleSolver._weno5_derivative`` (minus the
    padding, which the caller supplies): four WENO5 edge reconstructions
    batched into one stacked ``fused.weno5_edge`` call, upwind face
    selection, ``(f_plus - f_minus) * (1/spacing)``."""
    stack = _weno_stack(padded, axis, ws, key)
    edges = fused.weno5_edge(stack[0], stack[1], stack[2], stack[3], stack[4],
                             ws=ws, key=(*key, "e"))
    lm, lp, rm, rp = edges[0], edges[1], edges[2], edges[3]
    o = _o(ws)
    shp = lm.shape
    up = np.greater(vel, 0.0, out=o((*key, "up"), shp, bool))
    fm = where(up, lm, rm, out=o((*key, "fm"), shp))
    fp = where(up, lp, rp, out=o((*key, "fp"), shp))
    d = np.subtract(fp, fm, out=fp)
    return np.multiply(d, 1.0 / spacing, out=d)


def weno5_derivative_trunc(padded: np.ndarray, vel: np.ndarray, spacing: float, axis: int,
                           ws: Optional[Workspace] = None, key=(), *,
                           fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN) -> np.ndarray:
    """Truncating twin: quantised WENO5 edges (``trunc.weno5_edge``), then
    quantise after the face difference and the reciprocal-spacing multiply
    — the boundaries ``adv:face_diff`` / ``adv:weno_deriv`` round at.

    Like the binary64 twin, the four edges are reconstructed in one stacked
    ``trunc.weno5_edge`` call: quantisation is elementwise, so each batch
    row rounds exactly as its standalone call would."""
    key = ("T", *key)
    q = _Q(fmt, rounding, ws)
    stack = _weno_stack(padded, axis, ws, key)
    edges = _trunc_weno5_edge(stack[0], stack[1], stack[2], stack[3], stack[4],
                              ws=ws, key=(*key, "e"), fmt=fmt, rounding=rounding)
    lm, lp, rm, rp = edges[0], edges[1], edges[2], edges[3]
    o = _o(ws)
    shp = lm.shape
    up = np.greater(vel, 0.0, out=o((*key, "up"), shp, bool))
    fm = where(up, lm, rm, out=o((*key, "fm"), shp))
    fp = where(up, lp, rp, out=o((*key, "fp"), shp))
    d = np.subtract(fp, fm, out=fp)
    d = q(d)
    d = np.multiply(d, q.const(1.0 / spacing), out=d)
    return q(d)


def _upwind_neighbours(f, axis, boundary, padded, o, key):
    if boundary == "edge":
        sl_c = [slice(1, -1), slice(1, -1)]
        sl_m = list(sl_c)
        sl_p = list(sl_c)
        sl_m[axis] = slice(0, -2)
        sl_p[axis] = slice(2, None)
        return padded[tuple(sl_m)], padded[tuple(sl_p)]
    if boundary == "wrap":
        fm = roll1(f, 1, axis, o((*key, "rm"), f.shape))
        fp = roll1(f, -1, axis, o((*key, "rp"), f.shape))
        return fm, fp
    raise ValueError(f"unknown boundary mode {boundary!r}")


def upwind_derivative(f: np.ndarray, vel: np.ndarray, spacing: float, axis: int,
                      boundary: str = "wrap", padded: Optional[np.ndarray] = None,
                      ws: Optional[Workspace] = None, key=()) -> np.ndarray:
    """Binary64 twin of the shared first-order upwind derivative.

    ``boundary="edge"`` consumes a caller-supplied edge padding (the
    momentum stencil of ``incomp/solver.py``); ``boundary="wrap"`` rolls
    periodically (the level-set stencil).  Forward/backward differences are
    independent per-op computations, so their evaluation order does not
    affect the bits."""
    o = _o(ws)
    shp = f.shape
    fm, fp = _upwind_neighbours(f, axis, boundary, padded, o, key)
    inv = 1.0 / spacing
    bwd = np.subtract(f, fm, out=o((*key, "bwd"), shp))
    bwd = np.multiply(bwd, inv, out=bwd)
    fwd = np.subtract(fp, f, out=o((*key, "fwd"), shp))
    fwd = np.multiply(fwd, inv, out=fwd)
    up = np.greater(vel, 0.0, out=o((*key, "up"), shp, bool))
    return where(up, bwd, fwd, out=o((*key, "res"), shp))


def upwind_derivative_trunc(f: np.ndarray, vel: np.ndarray, spacing: float, axis: int,
                            boundary: str = "wrap", padded: Optional[np.ndarray] = None,
                            ws: Optional[Workspace] = None, key=(), *,
                            fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN) -> np.ndarray:
    """Truncating twin: quantise after each difference and each
    reciprocal-spacing multiply (``adv:bwd_diff``/``adv:bwd``/
    ``adv:fwd_diff``/``adv:fwd``); the upwind selection is
    quantise-closed.  Operands stay raw, exactly like the optimized
    instrumented context."""
    key = ("T", *key)
    q = _Q(fmt, rounding, ws)
    o = _o(ws)
    shp = f.shape
    fm, fp = _upwind_neighbours(f, axis, boundary, padded, o, key)
    inv = q.const(1.0 / spacing)
    bwd = np.subtract(f, fm, out=o((*key, "bwd"), shp))
    bwd = q(bwd)
    bwd = np.multiply(bwd, inv, out=bwd)
    bwd = q(bwd)
    fwd = np.subtract(fp, f, out=o((*key, "fwd"), shp))
    fwd = q(fwd)
    fwd = np.multiply(fwd, inv, out=fwd)
    fwd = q(fwd)
    up = np.greater(vel, 0.0, out=o((*key, "up"), shp, bool))
    return where(up, bwd, fwd, out=o((*key, "res"), shp))


# ---------------------------------------------------------------------------
# the advection total u . grad(f)
# ---------------------------------------------------------------------------
def advection_term(fx: np.ndarray, fy: np.ndarray, velx: np.ndarray, vely: np.ndarray,
                   ws: Optional[Workspace] = None, key=()) -> np.ndarray:
    """Binary64 tail of ``BubbleSolver.advection_term``:
    ``velx * fx + vely * fy``.  ``fx``/``fy`` are derivative results owned
    by this evaluation and are consumed in place."""
    t1 = np.multiply(velx, fx, out=fx)
    t2 = np.multiply(vely, fy, out=fy)
    return np.add(t1, t2, out=_o(ws)((*key, "res"), t1.shape))


def advection_term_trunc(fx: np.ndarray, fy: np.ndarray, velx: np.ndarray, vely: np.ndarray,
                         ws: Optional[Workspace] = None, key=(), *,
                         fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN) -> np.ndarray:
    """Truncating tail: the velocities go through ``const`` (an array
    quantisation, like ``ctx.const(self.velx)``), each product and the sum
    are quantised (``adv:u_fx``/``adv:v_fy``/``adv:total``)."""
    key = ("T", *key)
    q = _Q(fmt, rounding, ws)
    o = _o(ws)
    shp = fx.shape
    qvx = quantize_into(velx, fmt, rounding, ws, out=o((*key, "qvx"), shp))
    t1 = np.multiply(qvx, fx, out=fx)
    t1 = q(t1)
    qvy = quantize_into(vely, fmt, rounding, ws, out=o((*key, "qvy"), shp))
    t2 = np.multiply(qvy, fy, out=fy)
    t2 = q(t2)
    res = np.add(t1, t2, out=o((*key, "res"), shp))
    return q(res)


# ---------------------------------------------------------------------------
# diffusion div(nu grad f)
# ---------------------------------------------------------------------------
_FACES = ((1, 0), (-1, 0), (0, 1), (0, -1))


def _shifted(arr, di, dj):
    return arr[1 + di:arr.shape[0] - 1 + di, 1 + dj:arr.shape[1] - 1 + dj]


def diffusion_term(f: np.ndarray, nu: np.ndarray, fp: np.ndarray, nup: np.ndarray,
                   dx: float, dy: float, ws: Optional[Workspace] = None, key=()) -> np.ndarray:
    """Binary64 twin of ``BubbleSolver.diffusion_term``: per face,
    ``0.5 * (nu + nu_shifted) * (f_shifted - f) / spacing^2``, accumulated
    over the four faces starting from zeros.  ``fp``/``nup`` are the
    caller-supplied edge paddings of ``f`` and ``nu``."""
    o = _o(ws)
    shp = f.shape
    acc = o((*key, "res"), shp)
    if acc is None:
        acc = np.zeros(shp)
    else:
        acc.fill(0.0)
    for di, dj in _FACES:
        spacing = dx if dj == 0 else dy
        s = np.add(nu, _shifted(nup, di, dj), out=o((*key, "t1"), shp))
        nu_face = np.multiply(0.5, s, out=s)
        g = np.subtract(_shifted(fp, di, dj), f, out=o((*key, "t2"), shp))
        g = np.multiply(g, 1.0 / spacing ** 2, out=g)
        flx = np.multiply(nu_face, g, out=nu_face)
        acc = np.add(acc, flx, out=acc)
    return acc


def diffusion_term_trunc(f: np.ndarray, nu: np.ndarray, fp: np.ndarray, nup: np.ndarray,
                         dx: float, dy: float, ws: Optional[Workspace] = None, key=(), *,
                         fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN) -> np.ndarray:
    """Truncating twin.  ``const`` boundaries: ``nu``, ``f`` and each
    shifted padding are array-quantised (the instrumented loop re-quantises
    ``nu``/``f`` per face, but quantisation is idempotent, so hoisting
    them is exact); every arithmetic op is quantised
    (``diff:nu_sum``/``diff:nu_face``/``diff:df``/``diff:grad``/
    ``diff:flux``/``diff:accum``), including the first accumulate onto the
    zero field."""
    key = ("T", *key)
    q = _Q(fmt, rounding, ws)
    o = _o(ws)
    shp = f.shape
    qnu = quantize_into(nu, fmt, rounding, ws, out=o((*key, "qnu"), shp))
    qf = quantize_into(f, fmt, rounding, ws, out=o((*key, "qf"), shp))
    half = q.const(0.5)
    acc = o((*key, "res"), shp)
    if acc is None:
        acc = np.zeros(shp)
    else:
        acc.fill(0.0)
    for di, dj in _FACES:
        spacing = dx if dj == 0 else dy
        qns = quantize_into(_shifted(nup, di, dj), fmt, rounding, ws, out=o((*key, "qns"), shp))
        s = np.add(qnu, qns, out=o((*key, "t1"), shp))
        s = q(s)
        nu_face = np.multiply(half, s, out=s)
        nu_face = q(nu_face)
        qfs = quantize_into(_shifted(fp, di, dj), fmt, rounding, ws, out=o((*key, "qfs"), shp))
        g = np.subtract(qfs, qf, out=o((*key, "t2"), shp))
        g = q(g)
        g = np.multiply(g, q.const(1.0 / spacing ** 2), out=g)
        g = q(g)
        flx = np.multiply(nu_face, g, out=nu_face)
        flx = q(flx)
        acc = np.add(acc, flx, out=acc)
        acc = q(acc)
    return acc


# ---------------------------------------------------------------------------
# level-set transport (truncation target: roll-based upwind advection)
# ---------------------------------------------------------------------------
def levelset_advect(phi: np.ndarray, velx: np.ndarray, vely: np.ndarray, dt: float,
                    dx: float, dy: float, ws: Optional[Workspace] = None,
                    key=("lsadv",)) -> np.ndarray:
    """Binary64 twin of ``LevelSet.advect``:
    ``phi - dt * (velx * dphi/dx + vely * dphi/dy)`` with roll-based upwind
    derivatives.  Returns a fresh array (it becomes ``LevelSet.phi``)."""
    dpx = upwind_derivative(phi, velx, dx, 0, "wrap", ws=ws, key=(*key, 0))
    dpy = upwind_derivative(phi, vely, dy, 1, "wrap", ws=ws, key=(*key, 1))
    t1 = np.multiply(velx, dpx, out=dpx)
    t2 = np.multiply(vely, dpy, out=dpy)
    change = np.add(t1, t2, out=t1)
    m = np.multiply(dt, change, out=change)
    return np.subtract(phi, m)


def levelset_advect_trunc(phi: np.ndarray, velx: np.ndarray, vely: np.ndarray, dt: float,
                          dx: float, dy: float, ws: Optional[Workspace] = None,
                          key=("lsadv",), *, fmt: FPFormat,
                          rounding: str = RoundingMode.NEAREST_EVEN) -> np.ndarray:
    """Truncating twin of ``LevelSet.advect``: phi goes through ``const``
    (array quantisation) first; the velocities stay raw operands exactly
    like the instrumented call sites (``ctx.mul(velx, dpx, ...)``); ``dt``
    is a per-step scalar, quantised uncached.  Returns a fresh array."""
    key = ("T", *key)
    q = _Q(fmt, rounding, ws)
    o = _o(ws)
    shp = phi.shape
    qphi = quantize_into(phi, fmt, rounding, ws, out=o((*key, "qphi"), shp))
    dpx = upwind_derivative_trunc(qphi, velx, dx, 0, "wrap", ws=ws, key=(*key, 0),
                                  fmt=fmt, rounding=rounding)
    dpy = upwind_derivative_trunc(qphi, vely, dy, 1, "wrap", ws=ws, key=(*key, 1),
                                  fmt=fmt, rounding=rounding)
    t1 = np.multiply(velx, dpx, out=dpx)
    t1 = q(t1)
    t2 = np.multiply(vely, dpy, out=dpy)
    t2 = q(t2)
    change = np.add(t1, t2, out=t1)
    change = q(change)
    m = np.multiply(q.dyn(dt), change, out=change)
    m = q(m)
    out = np.subtract(qphi, m)
    return quantize_into(out, fmt, rounding, ws, out=out)
