"""The fused flux pipeline of the fast plane.

Straight-line numpy twins of the full compressible flux stack — the
gamma-law EOS helpers (:mod:`repro.hydro.eos`), the Davis/Einfeldt wave
speeds and the HLL/HLLC/HLLE Riemann solvers
(:mod:`repro.hydro.riemann`), and the whole per-block update of
:meth:`repro.hydro.solver.HydroSolver.advance_block` — so a complete
directional sweep (reconstruct → wave speeds → flux → update) runs on the
fast plane without a single context dispatch.

Bit-identity contract
---------------------
Every value produced here is computed by **the same ufunc expression tree**
as its instrumented twin, so on binary64 data the results are bitwise
identical.  Two deliberate liberties that preserve that contract:

* *Common subexpressions are evaluated once.*  The instrumented
  ``euler_flux`` recomputes the conserved state per side and ``hll_flux``
  re-multiplies ``sl*sr`` per component; recomputation of a deterministic
  expression yields the same bits, so the fused twins hoist them.
* *Temporaries are reused through ``out=``.*  ``out=`` never changes ufunc
  rounding, and the kernels never write into caller-owned arrays; with a
  :class:`~repro.kernels.scratch.Workspace` the steady-state pipeline runs
  with zero allocations (final outputs excepted — they must survive the
  next invocation, so they are always fresh).

All kernels operate on the *trailing* two dimensions, so a stack of
same-shaped AMR blocks ``(nblocks, nx, ny)`` flows through unchanged —
element-wise ufuncs are independent per slot, which is what makes the hydro
solver's batched block stepping bit-identical to the per-block loop.
"""
from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from . import fused
from .fused import where
from .scratch import Workspace
from .scratch import out_accessor as _o

__all__ = [
    "FUSED_SOLVERS",
    "eos_sound_speed",
    "eos_internal_energy",
    "eos_pressure_from_internal_energy",
    "eos_total_energy",
    "eos_pressure_from_total_energy",
    "davis_wave_speeds",
    "einfeldt_wave_speeds",
    "conserved_state",
    "euler_flux",
    "hll_flux",
    "hllc_flux",
    "hlle_flux",
    "directional_flux",
    "advance",
]

#: flux components, in the order the instrumented solvers iterate them
COMPONENTS = ("dens", "momn", "momt", "ener")


# ---------------------------------------------------------------------------
# gamma-law EOS helpers (twins of repro.hydro.eos.GammaLawEOS)
# ---------------------------------------------------------------------------
def eos_sound_speed(dens, pres, gamma: float, ws=None, key=("cs",)):
    """c = sqrt(gamma * p / rho), fused."""
    o = _o(ws)
    shp = np.broadcast_shapes(np.shape(dens), np.shape(pres))
    gp = np.multiply(gamma, pres, out=o((*key, "gp"), shp))
    np.divide(gp, dens, out=gp)
    return np.sqrt(gp, out=gp)


def eos_internal_energy(dens, pres, gamma: float, ws=None, key=("eint",)):
    """e_int = p / ((gamma - 1) rho), fused."""
    o = _o(ws)
    shp = np.broadcast_shapes(np.shape(dens), np.shape(pres))
    denom = np.multiply(gamma - 1.0, dens, out=o((*key, "denom"), shp))
    return np.divide(pres, denom, out=denom)


def eos_pressure_from_internal_energy(dens, eint, gamma: float, pressure_floor: float,
                                      ws=None, key=("pei",)):
    """p = max((gamma - 1) rho e_int, floor), fused."""
    o = _o(ws)
    shp = np.broadcast_shapes(np.shape(dens), np.shape(eint))
    rho_e = np.multiply(dens, eint, out=o((*key, "rho_e"), shp))
    pres = np.multiply(gamma - 1.0, rho_e, out=rho_e)
    return np.maximum(pres, pressure_floor, out=pres)


def eos_total_energy(dens, velx, vely, pres, gamma: float, ws=None, key=("etot",), out=None):
    """E = rho e_int + 0.5 rho (u^2 + v^2), fused."""
    o = _o(ws)
    shp = np.broadcast_shapes(np.shape(dens), np.shape(velx), np.shape(vely), np.shape(pres))
    eint = eos_internal_energy(dens, pres, gamma, ws, (*key, "ei"))
    u2 = np.multiply(velx, velx, out=o((*key, "u2"), shp))
    v2 = np.multiply(vely, vely, out=o((*key, "v2"), shp))
    kin = np.add(u2, v2, out=u2)
    np.multiply(dens, kin, out=kin)
    ke = np.multiply(0.5, kin, out=kin)
    rho_eint = np.multiply(dens, eint, out=eint)
    if out is None:
        out = o((*key, "res"), shp)
    return np.add(rho_eint, ke, out=out)


def eos_pressure_from_total_energy(dens, momx, momy, ener, gamma: float,
                                   pressure_floor: float, density_floor: float,
                                   ws=None, key=("pte",), out=None):
    """Pressure from conserved variables (with floors), fused."""
    o = _o(ws)
    shp = np.broadcast_shapes(np.shape(dens), np.shape(momx), np.shape(momy), np.shape(ener))
    dens_f = np.maximum(dens, density_floor, out=o((*key, "df"), shp))
    velx = np.divide(momx, dens_f, out=o((*key, "u"), shp))
    vely = np.divide(momy, dens_f, out=o((*key, "v"), shp))
    mu_u = np.multiply(momx, velx, out=velx)
    mv_v = np.multiply(momy, vely, out=vely)
    kin = np.add(mu_u, mv_v, out=mu_u)
    ke = np.multiply(0.5, kin, out=kin)
    eint_dens = np.subtract(ener, ke, out=ke)
    pres = np.multiply(gamma - 1.0, eint_dens, out=eint_dens)
    if out is None:
        out = o((*key, "res"), shp)
    return np.maximum(pres, pressure_floor, out=out)


# ---------------------------------------------------------------------------
# wave-speed estimates
# ---------------------------------------------------------------------------
def davis_wave_speeds(left: Dict, right: Dict, gamma: float, ws=None, key=("dws",)):
    """Davis estimates S_L = min(ul-cl, ur-cr), S_R = max(ul+cl, ur+cr)."""
    o = _o(ws)
    cl = eos_sound_speed(left["dens"], left["pres"], gamma, ws, (*key, "cl"))
    cr = eos_sound_speed(right["dens"], right["pres"], gamma, ws, (*key, "cr"))
    shp = cl.shape
    a = np.subtract(left["velx"], cl, out=o((*key, "a"), shp))
    b = np.subtract(right["velx"], cr, out=o((*key, "b"), shp))
    sl = np.minimum(a, b, out=a)
    a2 = np.add(left["velx"], cl, out=cl)
    b2 = np.add(right["velx"], cr, out=cr)
    sr = np.maximum(a2, b2, out=a2)
    return sl, sr


def einfeldt_wave_speeds(left: Dict, right: Dict, gamma: float, ws=None, key=("ews",)):
    """Einfeldt (HLLE) estimates from Roe averages, fused twin of
    ``repro.hydro.riemann._einfeldt_wave_speeds``."""
    o = _o(ws)
    cl = eos_sound_speed(left["dens"], left["pres"], gamma, ws, (*key, "cl"))
    cr = eos_sound_speed(right["dens"], right["pres"], gamma, ws, (*key, "cr"))
    shp = cl.shape
    sql = np.sqrt(left["dens"], out=o((*key, "sql"), shp))
    sqr = np.sqrt(right["dens"], out=o((*key, "sqr"), shp))
    wsum = np.add(sql, sqr, out=o((*key, "wsum"), shp))
    # Roe-averaged normal velocity
    n1 = np.multiply(sql, left["velx"], out=o((*key, "n1"), shp))
    n2 = np.multiply(sqr, right["velx"], out=o((*key, "n2"), shp))
    np.add(n1, n2, out=n1)
    u_roe = np.divide(n1, wsum, out=n1)
    # Roe-averaged sound speed with Einfeldt's eta2 velocity-jump term
    cl2 = np.multiply(cl, cl, out=o((*key, "cl2"), shp))
    cr2 = np.multiply(cr, cr, out=o((*key, "cr2"), shp))
    np.multiply(sql, cl2, out=cl2)
    np.multiply(sqr, cr2, out=cr2)
    c2 = np.add(cl2, cr2, out=cl2)
    c2_bar = np.divide(c2, wsum, out=c2)
    du = np.subtract(right["velx"], left["velx"], out=o((*key, "du"), shp))
    sqlr = np.multiply(sql, sqr, out=o((*key, "sqlr"), shp))
    w2 = np.multiply(wsum, wsum, out=o((*key, "w2"), shp))
    np.divide(sqlr, w2, out=sqlr)
    eta = np.multiply(0.5, sqlr, out=sqlr)
    du2 = np.multiply(du, du, out=o((*key, "du2"), shp))
    np.multiply(eta, du2, out=du2)
    croe2 = np.add(c2_bar, du2, out=c2_bar)
    c_roe = np.sqrt(croe2, out=croe2)
    # S_L = min(ul - cl, u_roe - c_roe); S_R = max(ur + cr, u_roe + c_roe)
    a = np.subtract(left["velx"], cl, out=cl)
    b = np.subtract(u_roe, c_roe, out=o((*key, "b"), shp))
    sl = np.minimum(a, b, out=a)
    a2 = np.add(right["velx"], cr, out=cr)
    b2 = np.add(u_roe, c_roe, out=b)
    sr = np.maximum(a2, b2, out=a2)
    return sl, sr


# ---------------------------------------------------------------------------
# conserved state and physical flux
# ---------------------------------------------------------------------------
def conserved_state(state: Dict, gamma: float, ws=None, key=("cons",)) -> Dict:
    """Conserved variables of a primitive face state, fused.

    ``dens`` aliases the input array (as in the instrumented twin).
    """
    o = _o(ws)
    dens, velx, vely = state["dens"], state["velx"], state["vely"]
    shp = np.shape(dens)
    momn = np.multiply(dens, velx, out=o((*key, "momn"), shp))
    momt = np.multiply(dens, vely, out=o((*key, "momt"), shp))
    ener = eos_total_energy(dens, velx, vely, state["pres"], gamma, ws, (*key, "en"),
                            out=o((*key, "ener"), shp))
    return {"dens": dens, "momn": momn, "momt": momt, "ener": ener}


def euler_flux(state: Dict, gamma: float, ws=None, key=("ef",), cons: Optional[Dict] = None) -> Dict:
    """Physical Euler flux normal to the face, fused.

    ``cons`` (optional) supplies an already-computed conserved state — the
    instrumented twin recomputes it, which produces identical bits.
    """
    o = _o(ws)
    velx, pres = state["velx"], state["pres"]
    if cons is None:
        cons = conserved_state(state, gamma, ws, (*key, "c"))
    shp = np.shape(cons["momn"])
    f_dens = cons["momn"]
    mn_u = np.multiply(cons["momn"], velx, out=o((*key, "momn"), shp))
    f_momn = np.add(mn_u, pres, out=mn_u)
    f_momt = np.multiply(cons["momt"], velx, out=o((*key, "momt"), shp))
    ep = np.add(cons["ener"], pres, out=o((*key, "ener"), shp))
    f_ener = np.multiply(ep, velx, out=ep)
    return {"dens": f_dens, "momn": f_momn, "momt": f_momt, "ener": f_ener}


# ---------------------------------------------------------------------------
# Riemann solvers
# ---------------------------------------------------------------------------
def _hll_from_speeds(sl, sr, left: Dict, right: Dict, gamma: float, ws, key) -> Dict:
    """HLL combination for given wave speeds (twin of
    ``repro.hydro.riemann._hll_from_speeds``)."""
    o = _o(ws)
    ul = conserved_state(left, gamma, ws, (*key, "ul"))
    ur = conserved_state(right, gamma, ws, (*key, "ur"))
    fl = euler_flux(left, gamma, ws, (*key, "fl"), cons=ul)
    fr = euler_flux(right, gamma, ws, (*key, "fr"), cons=ur)

    shp = np.shape(sl)
    use_left = np.greater_equal(sl, 0.0, out=o((*key, "usel"), shp, bool))
    use_right = np.less_equal(sr, 0.0, out=o((*key, "user"), shp, bool))
    denom = np.subtract(sr, sl, out=o((*key, "den"), shp))
    slsr = np.multiply(sl, sr, out=o((*key, "slsr"), shp))

    flux: Dict = {}
    for comp in COMPONENTS:
        a = np.multiply(sr, fl[comp], out=o((*key, "t1"), shp))
        b = np.multiply(sl, fr[comp], out=o((*key, "t2"), shp))
        diff = np.subtract(a, b, out=a)
        du = np.subtract(ur[comp], ul[comp], out=b)
        np.multiply(slsr, du, out=du)
        num = np.add(diff, du, out=diff)
        middle = np.divide(num, denom, out=num)
        inner = where(use_right, fr[comp], middle, out=middle)
        flux[comp] = where(use_left, fl[comp], inner, out=o((*key, "f", comp), shp))
    return flux


def hll_flux(left: Dict, right: Dict, gamma: float, ws=None, key=("hll",)) -> Dict:
    """Harten–Lax–van Leer flux, fused (Davis wave speeds)."""
    sl, sr = davis_wave_speeds(left, right, gamma, ws, (*key, "w"))
    return _hll_from_speeds(sl, sr, left, right, gamma, ws, key)


def hlle_flux(left: Dict, right: Dict, gamma: float, ws=None, key=("hlle",)) -> Dict:
    """HLLE flux, fused (Einfeldt wave speeds on the HLL combination)."""
    sl, sr = einfeldt_wave_speeds(left, right, gamma, ws, (*key, "w"))
    return _hll_from_speeds(sl, sr, left, right, gamma, ws, key)


def hllc_flux(left: Dict, right: Dict, gamma: float, ws=None, key=("hllc",)) -> Dict:
    """HLLC flux, fused (restores the contact wave missing from HLL)."""
    o = _o(ws)
    sl, sr = davis_wave_speeds(left, right, gamma, ws, (*key, "w"))
    ul = conserved_state(left, gamma, ws, (*key, "ul"))
    ur = conserved_state(right, gamma, ws, (*key, "ur"))
    fl = euler_flux(left, gamma, ws, (*key, "fl"), cons=ul)
    fr = euler_flux(right, gamma, ws, (*key, "fr"), cons=ur)

    dl, dr = left["dens"], right["dens"]
    vl, vr = left["velx"], right["velx"]
    pl, pr = left["pres"], right["pres"]
    shp = np.shape(sl)

    # contact (star) speed
    t = np.subtract(sl, vl, out=o((*key, "slvl"), shp))
    dl_slvl = np.multiply(dl, t, out=t)
    t = np.subtract(sr, vr, out=o((*key, "srvr"), shp))
    dr_srvr = np.multiply(dr, t, out=t)
    dp = np.subtract(pr, pl, out=o((*key, "dp"), shp))
    m1 = np.multiply(dl_slvl, vl, out=o((*key, "m1"), shp))
    m2 = np.multiply(dr_srvr, vr, out=o((*key, "m2"), shp))
    mom_diff = np.subtract(m1, m2, out=m1)
    num = np.add(dp, mom_diff, out=dp)
    den = np.subtract(dl_slvl, dr_srvr, out=o((*key, "sden"), shp))
    s_star = np.divide(num, den, out=num)

    def star_state(state, cons, s_k, d_slv, k):
        """Conserved state in the star region behind wave ``s_k``."""
        t1 = np.subtract(s_k, s_star, out=o((*k, "t1"), shp))
        factor = np.divide(d_slv, t1, out=t1)
        momn_star = np.multiply(factor, s_star, out=o((*k, "mn"), shp))
        momt_star = np.multiply(factor, state["vely"], out=o((*k, "mt"), shp))
        e_over_d = np.divide(cons["ener"], state["dens"], out=o((*k, "eod"), shp))
        t2 = np.subtract(s_k, state["velx"], out=o((*k, "t2"), shp))
        d_skv = np.multiply(state["dens"], t2, out=t2)
        p_term = np.divide(state["pres"], d_skv, out=d_skv)
        a = np.subtract(s_star, state["velx"], out=o((*k, "a"), shp))
        b = np.add(s_star, p_term, out=p_term)
        m = np.multiply(a, b, out=a)
        bracket = np.add(e_over_d, m, out=e_over_d)
        ener_star = np.multiply(factor, bracket, out=bracket)
        return {"dens": factor, "momn": momn_star, "momt": momt_star, "ener": ener_star}

    ul_star = star_state(left, ul, sl, dl_slvl, (*key, "sL"))
    ur_star = star_state(right, ur, sr, dr_srvr, (*key, "sR"))

    region_l = np.greater_equal(sl, 0.0, out=o((*key, "rl"), shp, bool))
    b1 = np.less(sl, 0.0, out=o((*key, "b1"), shp, bool))
    b2 = np.greater_equal(s_star, 0.0, out=o((*key, "b2"), shp, bool))
    region_ls = np.logical_and(b1, b2, out=b1)
    b3 = np.less(s_star, 0.0, out=o((*key, "b3"), shp, bool))
    b4 = np.greater(sr, 0.0, out=o((*key, "b4"), shp, bool))
    region_rs = np.logical_and(b3, b4, out=b3)

    flux: Dict = {}
    for comp in COMPONENTS:
        d1 = np.subtract(ul_star[comp], ul[comp], out=o((*key, "d1"), shp))
        np.multiply(sl, d1, out=d1)
        fl_star = np.add(fl[comp], d1, out=d1)
        d2 = np.subtract(ur_star[comp], ur[comp], out=o((*key, "d2"), shp))
        np.multiply(sr, d2, out=d2)
        fr_star = np.add(fr[comp], d2, out=d2)
        out_ = where(region_l, fl[comp], fr[comp], out=o((*key, "f", comp), shp))
        out_ = where(region_ls, fl_star, out_, out=out_)
        out_ = where(region_rs, fr_star, out_, out=out_)
        flux[comp] = out_
    return flux


#: solver name -> fused implementation (same keys as riemann.SOLVERS)
FUSED_SOLVERS = {"hll": hll_flux, "hllc": hllc_flux, "hlle": hlle_flux}


# ---------------------------------------------------------------------------
# the full directional sweep and block update
# ---------------------------------------------------------------------------
def directional_flux(prims: Dict, axis: int, ng: int, n: int, scheme: str, solver: str,
                     gamma: float, dens_floor: float, pres_floor: float,
                     ws: Optional[Workspace] = None) -> Dict:
    """Fluxes at the ``n+1`` interior faces along ``axis``, fully fused.

    Twin of ``HydroSolver._directional_flux``: reconstruct the four
    primitive variables, floor density/pressure, and resolve the interface
    states with the requested Riemann solver — one straight-line numpy
    pass, batched-block aware.
    """
    o = _o(ws)
    normal, transverse = ("velx", "vely") if axis == 0 else ("vely", "velx")
    recon = fused.FUSED_SCHEMES[scheme]
    left: Dict = {}
    right: Dict = {}
    for target, source in (("dens", "dens"), ("velx", normal), ("vely", transverse), ("pres", "pres")):
        l, r = recon(prims[source], axis, ng, n, ws=ws, key=(axis, "r", target))
        left[target] = l
        right[target] = r

    # keep reconstructed density/pressure physical (never in place: pcm
    # returns views of the caller's primitive arrays)
    shp = np.shape(left["dens"])
    left["dens"] = np.maximum(left["dens"], dens_floor, out=o((axis, "lfd"), shp))
    right["dens"] = np.maximum(right["dens"], dens_floor, out=o((axis, "rfd"), shp))
    left["pres"] = np.maximum(left["pres"], pres_floor, out=o((axis, "lfp"), shp))
    right["pres"] = np.maximum(right["pres"], pres_floor, out=o((axis, "rfp"), shp))

    flux = FUSED_SOLVERS[solver](left, right, gamma, ws, (axis, solver))
    if axis == 0:
        return {"dens": flux["dens"], "momx": flux["momn"], "momy": flux["momt"], "ener": flux["ener"]}
    return {"dens": flux["dens"], "momx": flux["momt"], "momy": flux["momn"], "ener": flux["ener"]}


def advance(prims: Dict, dt: float, dx: float, dy: float, ng: int, nxb: int, nyb: int, *,
            scheme: str, solver: str, gamma: float, dens_floor: float, pres_floor: float,
            gravity: Tuple[float, float] = (0.0, 0.0),
            ws: Optional[Workspace] = None) -> Dict:
    """One flux-divergence update of a block (or a stack of blocks), fused.

    Twin of ``HydroSolver.advance_block`` for non-truncating binary64
    contexts.  ``prims`` maps variable name to a guard-cell-filled array of
    shape ``(..., nxb + 2*ng, nyb + 2*ng)``; leading dimensions batch
    same-shaped blocks (which must share ``dx``/``dy``, i.e. one AMR
    level).  Returns the new interior primitives as **fresh** arrays (they
    must survive later invocations that reuse the workspace).
    """
    o = _o(ws)
    # x-sweep uses interior rows in y; y-sweep interior columns in x
    prims_x = {k: v[..., :, ng:ng + nyb] for k, v in prims.items()}
    prims_y = {k: v[..., ng:ng + nxb, :] for k, v in prims.items()}
    flux_x = directional_flux(prims_x, 0, ng, nxb, scheme, solver,
                              gamma, dens_floor, pres_floor, ws)
    flux_y = directional_flux(prims_y, 1, ng, nyb, scheme, solver,
                              gamma, dens_floor, pres_floor, ws)

    interior = {k: v[..., ng:ng + nxb, ng:ng + nyb] for k, v in prims.items()}
    dens, velx, vely, pres = (interior[k] for k in ("dens", "velx", "vely", "pres"))
    shp = np.shape(dens)
    momx = np.multiply(dens, velx, out=o(("u", "momx"), shp))
    momy = np.multiply(dens, vely, out=o(("u", "momy"), shp))
    ener = eos_total_energy(dens, velx, vely, pres, gamma, ws, ("u", "en"),
                            out=o(("u", "ener"), shp))
    cons = {"dens": dens, "momx": momx, "momy": momy, "ener": ener}

    dtdx = dt / dx
    dtdy = dt / dy
    new_cons: Dict = {}
    for comp in ("dens", "momx", "momy", "ener"):
        fx = flux_x[comp]
        fy = flux_y[comp]
        div_x = np.subtract(fx[..., 1:, :], fx[..., :-1, :], out=o(("u", "divx"), shp))
        div_y = np.subtract(fy[..., :, 1:], fy[..., :, :-1], out=o(("u", "divy"), shp))
        np.multiply(dtdx, div_x, out=div_x)
        np.multiply(dtdy, div_y, out=div_y)
        change = np.add(div_x, div_y, out=div_x)
        new_cons[comp] = np.subtract(cons[comp], change, out=o(("u", "new", comp), shp))

    # constant-gravity source term (matches the instrumented operation
    # stream: skipped entirely when gravity is off)
    gx, gy = gravity
    if gx != 0.0 or gy != 0.0:
        if gx != 0.0:
            dtgx = dt * gx
            src = np.multiply(dens, dtgx, out=o(("u", "src"), shp))
            np.add(new_cons["momx"], src, out=new_cons["momx"])
            np.multiply(momx, dtgx, out=src)
            np.add(new_cons["ener"], src, out=new_cons["ener"])
        if gy != 0.0:
            dtgy = dt * gy
            src = np.multiply(dens, dtgy, out=o(("u", "src"), shp))
            np.add(new_cons["momy"], src, out=new_cons["momy"])
            np.multiply(momy, dtgy, out=src)
            np.add(new_cons["ener"], src, out=new_cons["ener"])

    # conserved -> primitive, with floors; outputs are deliberately fresh
    new_dens = np.maximum(new_cons["dens"], dens_floor)
    new_velx = np.divide(new_cons["momx"], new_dens)
    new_vely = np.divide(new_cons["momy"], new_dens)
    new_pres = eos_pressure_from_total_energy(
        new_dens, new_cons["momx"], new_cons["momy"], new_cons["ener"],
        gamma, pres_floor, dens_floor, ws, ("u", "pte"), out=np.empty(shp),
    )
    return {"dens": new_dens, "velx": new_velx, "vely": new_vely, "pres": new_pres}
