"""Kernel-plane selection: which execution plane a context runs on.

The kernel plane decides *how* a numerics context executes, never *what* it
computes:

* ``"instrumented"`` — every context stays on the classic op-by-op plane
  (:mod:`repro.core.opmode` / :mod:`repro.core.memmode`): per-op counter
  updates, truncation, error tracking, shadow values.  Bit-for-bit the
  pre-kernel-plane behaviour, counters included.
* ``"fast"`` — non-truncating, non-shadow contexts are replaced by the
  fused binary64 :class:`~repro.kernels.fast.FastPlaneContext`, and the
  solvers route their hot paths through the pre-fused kernels of
  :mod:`repro.kernels.fused` / :mod:`repro.kernels.flux` (scratch-buffered
  and block-batched).  States are bit-identical (the fast plane evaluates
  the same ufunc expression trees); the trade is that those contexts no
  longer feed the op/mem counters.  Truncating and shadow contexts are the
  measurement itself and always remain instrumented.
* ``"auto"`` (default) — fast only where it is a pure win: contexts that
  would record nothing anyway (``count_ops`` and ``track_memory`` both
  off).  Counting contexts stay instrumented, so reported counters are
  byte-identical to the instrumented plane.

Reference runs are the special case: the experiment engine never consumes
their counters (point metrics come exclusively from the point runs, and
references are compared by state), so it resolves ``"auto"`` to ``"fast"``
for reference tasks (:func:`reference_plane`) — the cold-sweep hot path
runs fused by default, and a fast-plane reference simply carries zeroed
counters in its snapshot.
"""
from __future__ import annotations

from ..core.opmode import FPContext, FullPrecisionContext
from .fast import FastPlaneContext

__all__ = [
    "PLANES",
    "DEFAULT_PLANE",
    "validate_plane",
    "is_fast_eligible",
    "select_context",
    "reference_plane",
]

#: the kernel planes a policy / spec may request
PLANES = ("instrumented", "fast", "auto")

#: plane used when nothing is requested explicitly
DEFAULT_PLANE = "auto"


def validate_plane(plane: str) -> str:
    """Check a plane name and return it (fail fast at spec-validation time)."""
    if plane not in PLANES:
        raise ValueError(f"unknown kernel plane {plane!r}; choose from {PLANES}")
    return plane


def is_fast_eligible(ctx: FPContext) -> bool:
    """Whether the fast plane preserves ``ctx``'s semantics bit for bit.

    True exactly for plain binary64 contexts: a (subclass of)
    :class:`FullPrecisionContext` that does not truncate.  Truncated and
    shadow contexts perform the measurement and are never substituted.
    """
    return isinstance(ctx, FullPrecisionContext) and not ctx.truncating


def select_context(ctx: FPContext, plane: str = DEFAULT_PLANE) -> FPContext:
    """The context that should actually execute, given the requested plane.

    Returns ``ctx`` itself whenever substitution would change semantics
    (truncating / shadow contexts, the ``"instrumented"`` plane) or record
    different counters under ``"auto"``.
    """
    validate_plane(plane)
    if plane == "instrumented" or isinstance(ctx, FastPlaneContext):
        return ctx
    if not is_fast_eligible(ctx):
        return ctx
    if plane == "auto" and (ctx.count_ops or ctx.track_memory):
        return ctx
    return FastPlaneContext(runtime=ctx.runtime, module=ctx.module)


def reference_plane(plane: str) -> str:
    """The plane a full-precision *reference* run executes on.

    The engine never consumes reference counters — references are compared
    by state — so ``"auto"`` resolves to ``"fast"``; only an explicit
    ``"instrumented"`` request keeps the counting reference path (needed
    when the reference's own op counts are the object of study).
    """
    validate_plane(plane)
    return "instrumented" if plane == "instrumented" else "fast"
