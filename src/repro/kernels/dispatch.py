"""Kernel-plane selection: which execution plane a context runs on.

The kernel plane decides *how* a numerics context executes, never *what* it
computes:

* ``"instrumented"`` — every context stays on the classic op-by-op plane
  (:mod:`repro.core.opmode` / :mod:`repro.core.memmode`): per-op counter
  updates, truncation, error tracking, shadow values.  Bit-for-bit the
  pre-kernel-plane behaviour, counters included.
* ``"fast"`` — non-counting contexts move to their fused plane: plain
  binary64 contexts become the :class:`~repro.kernels.fast.FastPlaneContext`
  and non-counting truncating contexts become the
  :class:`~repro.kernels.trunc.TruncFastPlaneContext`; the solvers route
  their hot paths through the pre-fused kernels of
  :mod:`repro.kernels.fused` / :mod:`repro.kernels.flux` /
  :mod:`repro.kernels.trunc` (scratch-buffered and block-batched); the
  bubble solver routes its advection/diffusion/level-set operators through
  the twins of :mod:`repro.kernels.bubble` the same way.  States
  are bit-identical (the fused planes evaluate the same ufunc expression
  trees, quantised at the same op boundaries); the trade is that
  substituted contexts no longer feed the op/mem counters.  *Counting*
  truncating contexts and shadow contexts are the measurement itself and
  always remain instrumented — substituting a counting binary64 context
  here zeroes its counters, which is reported with a :class:`UserWarning`.
* ``"auto"`` (default) — fused only where it is a pure win: contexts that
  would record nothing anyway (``count_ops`` and ``track_memory`` both
  off).  Counting contexts stay instrumented, so reported counters are
  byte-identical to the instrumented plane.

Reference runs are the special case: the experiment engine never consumes
their counters (point metrics come exclusively from the point runs, and
references are compared by state), so it resolves ``"auto"`` to ``"fast"``
for reference tasks (:func:`reference_plane`) — the cold-sweep hot path
runs fused by default, and a fast-plane reference simply carries zeroed
counters in its snapshot.
"""
from __future__ import annotations

import warnings

from ..core.opmode import FPContext, FullPrecisionContext, TruncatedContext
from .fast import FastPlaneContext
from .trunc import TruncFastPlaneContext

__all__ = [
    "PLANES",
    "DEFAULT_PLANE",
    "validate_plane",
    "is_fast_eligible",
    "is_trunc_fast_eligible",
    "select_context",
    "reference_plane",
]

#: the kernel planes a policy / spec may request
PLANES = ("instrumented", "fast", "auto")

#: plane used when nothing is requested explicitly
DEFAULT_PLANE = "auto"


def validate_plane(plane: str) -> str:
    """Check a plane name and return it (fail fast at spec-validation time)."""
    if plane not in PLANES:
        raise ValueError(f"unknown kernel plane {plane!r}; choose from {PLANES}")
    return plane


def is_fast_eligible(ctx: FPContext) -> bool:
    """Whether the binary64 fast plane preserves ``ctx``'s semantics bit
    for bit.

    True exactly for plain binary64 contexts: a (subclass of)
    :class:`FullPrecisionContext` that does not truncate.  Truncated and
    shadow contexts perform the measurement and are never substituted.
    """
    return isinstance(ctx, FullPrecisionContext) and not ctx.truncating


def is_trunc_fast_eligible(ctx: FPContext) -> bool:
    """Whether the truncating fast plane preserves ``ctx``'s semantics bit
    for bit *and* loses nothing by dropping the counters.

    True exactly for optimized op-mode :class:`TruncatedContext`\\ s that
    record nothing: ``count_ops``/``track_memory``/``track_errors`` all
    off.  A counting truncating context *is* the measurement and stays
    instrumented on every plane; shadow (mem-mode) contexts are not
    ``TruncatedContext`` subclasses and are excluded structurally; the
    naive (``optimized=False``) path re-quantises every operand, which the
    fused twins do not reproduce.
    """
    return (
        isinstance(ctx, TruncatedContext)
        and ctx.optimized
        and not (ctx.count_ops or ctx.track_memory or ctx.track_errors)
    )


def select_context(ctx: FPContext, plane: str = DEFAULT_PLANE) -> FPContext:
    """The context that should actually execute, given the requested plane.

    Returns ``ctx`` itself whenever substitution would change semantics
    (counting truncating / shadow contexts, the ``"instrumented"`` plane)
    or record different counters under ``"auto"``.  An explicit
    ``plane="fast"`` request on a *counting* binary64 context substitutes
    anyway (states stay bit-identical) but warns that the counters will
    read zero.
    """
    validate_plane(plane)
    if plane == "instrumented" or isinstance(ctx, (FastPlaneContext, TruncFastPlaneContext)):
        return ctx
    if is_trunc_fast_eligible(ctx):
        # non-counting truncating context: the fused truncating plane is a
        # pure, bit-identical win under both "fast" and "auto"
        return TruncFastPlaneContext.from_context(ctx)
    if not is_fast_eligible(ctx):
        return ctx
    if ctx.count_ops or ctx.track_memory:
        if plane == "auto":
            return ctx
        # explicit "fast" on a counting binary64 context: honour the
        # request, but the caller loses its op/mem counters — say so
        warnings.warn(
            f"plane='fast' substitutes the non-counting fast plane for a "
            f"counting binary64 context (module={ctx.module!r}): its op/mem "
            f"counters will read zero; request plane='auto' to keep counting "
            f"contexts instrumented",
            UserWarning,
            stacklevel=2,
        )
    return FastPlaneContext(runtime=ctx.runtime, module=ctx.module)


def reference_plane(plane: str) -> str:
    """The plane a full-precision *reference* run executes on.

    The engine never consumes reference counters — references are compared
    by state — so ``"auto"`` resolves to ``"fast"``; only an explicit
    ``"instrumented"`` request keeps the counting reference path (needed
    when the reference's own op counts are the object of study).
    """
    validate_plane(plane)
    return "instrumented" if plane == "instrumented" else "fast"
