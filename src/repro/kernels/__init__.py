"""repro.kernels — the kernel-plane layer between policies and solvers.

Solver kernels (:mod:`repro.hydro`, :mod:`repro.incomp`) express their
arithmetic against the :class:`~repro.core.opmode.FPContext` interface;
*this* package decides which execution plane a given context actually runs
on:

* the **instrumented plane** — the op-by-op contexts of
  :mod:`repro.core.opmode` / :mod:`repro.core.memmode` (counters,
  truncation, shadow tracking; unchanged semantics), and
* the **fused binary64 fast plane** — :class:`FastPlaneContext` plus the
  pre-fused stencils of :mod:`repro.kernels.fused` and the full fused
  flux pipeline of :mod:`repro.kernels.flux` (EOS helpers, wave speeds,
  HLL/HLLC/HLLE Riemann solvers, whole-block updates), threaded through
  the preallocated scratch workspaces of :mod:`repro.kernels.scratch` —
  non-truncating, non-instrumenting contexts run as plain vectorized
  numpy with zero per-op bookkeeping and (steady-state) zero temporary
  allocation, bit-identical to the instrumented plane, and
* the **fused truncating fast plane** — :class:`TruncFastPlaneContext`
  plus the quantize-at-op-boundary kernel twins of
  :mod:`repro.kernels.trunc`: non-counting truncating contexts run the
  same fused pipeline with a vectorised quantisation at exactly the op
  boundaries the instrumented plane rounds at, bit-identical to the
  optimized op-by-op truncating path.

Alongside the context planes, :mod:`repro.kernels.grid` fuses the
context-free *grid* side — precomputed guard-fill plans, a batched
``compute_dt`` and stacked regrid estimators — gated by
``RAPTOR_FAST_NO_GRID`` (:func:`grid_plane_enabled`); it is plain binary64
numpy outside any context, so instrumented counters stay byte-identical.
:mod:`repro.kernels.bubble` does the same for the incompressible bubble
solver — scratch-buffered twins of its advection/diffusion/level-set/
projection operators, each truncatable one in a binary64 *and* a
quantize-at-op-boundary variant — gated by ``RAPTOR_FAST_NO_BUBBLE``
(:func:`bubble_plane_enabled`).

Plane selection (:func:`select_context`) is applied centrally by
:class:`~repro.core.selective.TruncationPolicy`, so every workload honours
``plane="instrumented" | "fast" | "auto"`` without solver changes; the
experiment engine threads the choice through ``SweepSpec`` /
``AdaptiveSpec`` and routes reference tasks to the fast plane by default
(:func:`reference_plane`).

For convenience this package re-exports the context interface the solvers
consume, so kernel code depends on ``repro.kernels`` alone.
"""
from ..core.memmode import ShadowContext
from ..core.opmode import FPContext, FullPrecisionContext, TruncatedContext, make_context
from . import bubble, flux, fused, grid, scratch, trunc
from .dispatch import (
    DEFAULT_PLANE,
    PLANES,
    is_fast_eligible,
    is_trunc_fast_eligible,
    reference_plane,
    select_context,
    validate_plane,
)
from .fast import FastPlaneContext
from .scratch import (
    Workspace,
    batching_enabled,
    bubble_plane_enabled,
    grid_plane_enabled,
    make_workspace,
    scratch_enabled,
)
from .trunc import TruncFastPlaneContext

__all__ = [
    # the context interface solver kernels consume
    "FPContext",
    "FullPrecisionContext",
    "TruncatedContext",
    "ShadowContext",
    "make_context",
    # the fast planes
    "FastPlaneContext",
    "TruncFastPlaneContext",
    "fused",
    "flux",
    "grid",
    "bubble",
    "trunc",
    # scratch workspaces
    "scratch",
    "Workspace",
    "make_workspace",
    "scratch_enabled",
    "batching_enabled",
    "grid_plane_enabled",
    "bubble_plane_enabled",
    # plane selection
    "PLANES",
    "DEFAULT_PLANE",
    "validate_plane",
    "is_fast_eligible",
    "is_trunc_fast_eligible",
    "select_context",
    "reference_plane",
]
