"""The fused truncating plane: quantize-at-op-boundary kernel twins.

PRs 4–5 gave *binary64* contexts a fast plane — straight-line numpy twins
of the reconstruction stencils and the flux pipeline with no per-op context
dispatch.  Truncated points, the overwhelming bulk of any sweep or cliff
search, still paid the instrumented path.  This module closes that gap:
fused truncating twins of :mod:`repro.kernels.fused` and
:mod:`repro.kernels.flux` that apply vectorised
:func:`repro.core.quantize.quantize` rounding at **exactly the op
boundaries** the instrumented plane rounds at — truncation only, no
counters — plus the :class:`TruncFastPlaneContext` the dispatch layer
routes eligible truncating contexts onto.

Bit-identity contract
---------------------
The reference semantics are those of an *optimized*
:class:`~repro.core.opmode.TruncatedContext` (``optimized=True``): every
FLOP is evaluated in binary64 and its **result** is quantised to the
context's format/rounding; operands are assumed to already be
representable (they are, as long as every value in the region was produced
by the same context — the same contract the optimized instrumented path
relies on).  The twins reproduce that op stream term for term:

* A quantisation is inserted after every ``add``/``sub``/``mul``/``div``/
  ``sqrt``/``square`` — the same boundaries ``TruncatedContext._apply``
  rounds at.
* ``maximum``/``minimum``/``abs``/``negative``/``where``/constant fills are
  *closed* over representable operands: quantising their result is the
  identity, so the twins skip it.  This is never applied to arithmetic
  ops, whose results can fall between representable values.
* Constants go through :func:`quantize` exactly like
  ``TruncatedContext.const``: derived constants (``gamma - 1.0``,
  ``1.0 / 6.0``, ``dt / dx``…) are computed in binary64 *first* and then
  quantised, matching the instrumented call sites.
* Predicates compare the same values the instrumented twins compare:
  sign agreement in minmod uses the *quantised* product, HLL/HLLC region
  selection uses the *quantised* wave speeds, magnitude comparison uses
  the raw operands (``abs`` being quantise-closed).

Like :mod:`repro.kernels.flux`, everything operates on the trailing two
dimensions, so stacked same-shaped blocks ``(nblocks, nx, ny)`` flow
through unchanged and the solver's batched per-level stepping stays
bit-identical to the per-block loop.  All intermediates live in the shared
:class:`~repro.kernels.scratch.Workspace`; final outputs are fresh.
"""
from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.fpformat import FPFormat
from ..core.opmode import TruncatedContext
from ..core.quantize import RoundingMode, quantize
from . import fused
from .fused import where
from .scratch import Workspace
from .scratch import out_accessor as _o

__all__ = [
    "TRUNC_SCHEMES",
    "TRUNC_SOLVERS",
    "TruncFastPlaneContext",
    "quantize_into",
    "pcm",
    "plm",
    "weno5",
    "weno5_edge",
    "eos_sound_speed",
    "eos_internal_energy",
    "eos_pressure_from_internal_energy",
    "eos_total_energy",
    "eos_pressure_from_total_energy",
    "davis_wave_speeds",
    "einfeldt_wave_speeds",
    "conserved_state",
    "euler_flux",
    "hll_flux",
    "hllc_flux",
    "hlle_flux",
    "directional_flux",
    "advance",
]

#: matches ``repro.hydro.reconstruction._WENO_EPS``
_WENO_EPS = 1e-6

#: flux components, in the order the instrumented solvers iterate them
COMPONENTS = ("dens", "momn", "momt", "ener")

#: scratch key family reserved for :func:`quantize_into` intermediates —
#: no quantisation scratch survives a call, so one family is shared by
#: every call site (kernel buffers use their own keys and never collide)
_QZ = "qz"

#: per-format scalar cache: (exp_bits, man_bits) -> (emin, man_bits, max_value)
#: — the FPFormat properties recompute these from the bias on every access,
#: which is measurable at quantise-per-op call rates
_FMT_CACHE: Dict[Tuple[int, int], Tuple[int, int, float]] = {}


def _fmt_scalars(fmt: FPFormat) -> Tuple[int, int, float]:
    key = (fmt.exp_bits, fmt.man_bits)
    v = _FMT_CACHE.get(key)
    if v is None:
        v = (fmt.emin, fmt.man_bits, fmt.max_value)
        _FMT_CACHE[key] = v
    return v


# ---------------------------------------------------------------------------
# buffered quantisation
# ---------------------------------------------------------------------------
def quantize_into(
    arr: np.ndarray,
    fmt: FPFormat,
    rounding: str = RoundingMode.NEAREST_EVEN,
    ws: Optional[Workspace] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """:func:`repro.core.quantize.quantize`, bit-identical, with scratch.

    Evaluates the same decompose/round/recompose formulas as ``quantize``
    on **all** lanes (every step is element-wise, so finite lanes see the
    same bits as the compressed-subset original; non-finite and zero lanes
    are restored from ``arr`` at the end), writing every intermediate into
    preallocated workspace buffers instead of allocating ~a dozen
    temporaries per call.  ``out`` may be ``arr`` itself (the hot in-place
    case: all reads of ``arr`` precede the single masked write) or any
    non-overlapping array; ``None`` allocates a fresh result.
    """
    if rounding not in RoundingMode.ALL:
        raise ValueError(f"unknown rounding mode: {rounding!r}")
    arr = np.asarray(arr, dtype=np.float64)
    shp = arr.shape
    if fmt.is_fp64() and rounding == RoundingMode.NEAREST_EVEN:
        if out is None:
            return arr.copy()
        if out is not arr:
            np.copyto(out, arr)
        return out

    if ws is None:
        # no workspace: fall back to fresh buffers (frexp/ldexp need real
        # out arrays — the chain reads them back)
        o = lambda key, shape, dtype=np.float64: np.empty(shape, np.dtype(dtype))
    else:
        o = _o(ws)
    fmt_emin, fmt_man_bits, fmt_max_value = _fmt_scalars(fmt)
    finite = np.isfinite(arr, out=o((_QZ, "fin"), shp, bool))
    mask = np.not_equal(arr, 0.0, out=o((_QZ, "msk"), shp, bool))
    np.logical_and(finite, mask, out=finite)
    if not finite.any():
        if out is None:
            return arr.copy()
        if out is not arr:
            np.copyto(out, arr)
        return out

    sign = np.signbit(arr, out=o((_QZ, "sgn"), shp, bool))
    mag = np.abs(arr, out=o((_QZ, "mag"), shp))

    # The formulas run on non-finite lanes too (restored below), so ldexp
    # overflow / frexp-of-inf warnings that the compressed original never
    # sees must be silenced; the finite-lane values are unaffected.
    with np.errstate(over="ignore", invalid="ignore"):
        m = o((_QZ, "m"), shp)
        e = o((_QZ, "e"), shp, np.int32)
        np.frexp(mag, m, e)
        E = np.subtract(e, 1, out=e)
        prec = np.subtract(fmt_emin, E, out=o((_QZ, "p"), shp, np.int32))
        np.maximum(prec, 0, out=prec)
        np.subtract(fmt_man_bits, prec, out=prec)
        p1 = np.add(prec, 1, out=o((_QZ, "p1"), shp, np.int32))
        scaled = np.ldexp(m, p1, out=m)
        if rounding == RoundingMode.NEAREST_EVEN:
            rounded = np.rint(scaled, out=scaled)
        elif rounding == RoundingMode.TOWARD_ZERO:
            rounded = np.trunc(scaled, out=scaled)
        elif rounding == RoundingMode.UP:
            other = np.floor(scaled, out=o((_QZ, "aux"), shp))
            rounded = np.ceil(scaled, out=scaled)
            np.copyto(rounded, other, where=sign)
        else:  # DOWN
            other = np.ceil(scaled, out=o((_QZ, "aux"), shp))
            rounded = np.floor(scaled, out=scaled)
            np.copyto(rounded, other, where=sign)
        expo = np.subtract(E, prec, out=E)
        q = np.ldexp(rounded, expo, out=rounded)
        neg = np.negative(q, out=o((_QZ, "aux"), shp))
        np.copyto(q, neg, where=sign)

        absq = np.abs(q, out=o((_QZ, "aux"), shp))
        over = np.greater(absq, fmt_max_value, out=mask)
        if over.any():
            if rounding == RoundingMode.TOWARD_ZERO:
                clamp = np.copysign(fmt_max_value, q, out=absq)
                np.copyto(q, clamp, where=over)
            elif rounding == RoundingMode.UP:
                pos = np.logical_not(sign, out=o((_QZ, "b2"), shp, bool))
                np.logical_and(over, pos, out=pos)
                np.copyto(q, np.inf, where=pos)
                np.logical_and(over, sign, out=over)
                np.copyto(q, -fmt_max_value, where=over)
            elif rounding == RoundingMode.DOWN:
                neg_over = np.logical_and(over, sign, out=o((_QZ, "b2"), shp, bool))
                np.copyto(q, -np.inf, where=neg_over)
                pos = np.logical_not(sign, out=o((_QZ, "b3"), shp, bool))
                np.logical_and(over, pos, out=pos)
                np.copyto(q, fmt_max_value, where=pos)
            else:
                clamp = np.copysign(np.inf, q, out=absq)
                np.copyto(q, clamp, where=over)

        zero = np.equal(q, 0.0, out=mask)
        np.logical_and(zero, sign, out=zero)
        np.copyto(q, -0.0, where=zero)

    if out is None:
        out = arr.copy()
    elif out is not arr:
        np.copyto(out, arr)
    np.copyto(out, q, where=finite)
    return out


#: quantised scalar constants, keyed by (format, rounding, value) —
#: bounded: only the literal stencil/EOS constants land here (per-step
#: values like dt/dx go through the uncached ``_Q.dyn``)
_CONST_CACHE: Dict[Tuple[int, int, str, float], float] = {}


class _Q:
    """In-place rounding helper bound to one (format, rounding, workspace)."""

    __slots__ = ("fmt", "rounding", "ws")

    def __init__(self, fmt: FPFormat, rounding: str, ws: Optional[Workspace]) -> None:
        self.fmt = fmt
        self.rounding = rounding
        self.ws = ws

    def __call__(self, arr: np.ndarray) -> np.ndarray:
        """Round ``arr`` in place (scratch/fresh buffers only, never views
        of caller data)."""
        return quantize_into(arr, self.fmt, self.rounding, self.ws, out=arr)

    def const(self, x: float) -> float:
        """Cached quantised literal — the twin of ``TruncatedContext.const``."""
        key = (self.fmt.exp_bits, self.fmt.man_bits, self.rounding, x)
        v = _CONST_CACHE.get(key)
        if v is None:
            v = float(quantize(x, self.fmt, self.rounding))
            _CONST_CACHE[key] = v
        return v

    def dyn(self, x: float) -> float:
        """Uncached quantised scalar for per-step values (``dt/dx``…)."""
        return float(quantize(x, self.fmt, self.rounding))


# ---------------------------------------------------------------------------
# the truncating fast-plane context
# ---------------------------------------------------------------------------
class TruncFastPlaneContext(TruncatedContext):
    """A truncating context living on the fused fast plane.

    Carries the point's :class:`~repro.core.fpformat.FPFormat` and rounding
    mode; ``count_ops``/``track_memory``/``track_errors`` are forced off —
    a context whose counters matter must stay instrumented (it *is* the
    measurement).  Inherits the optimized ``TruncatedContext`` op-by-op
    semantics verbatim for any code path without a fused twin (the incomp
    advection tail, level-set transport, diffusion…), so every operation —
    fused or not — is bit-identical to the instrumented plane.

    Solvers recognise the plane via the ``fused_trunc`` flag and
    short-circuit into the :mod:`repro.kernels.trunc` kernels; ``fused``
    stays False because the binary64 twins of :mod:`repro.kernels.flux`
    would skip the quantisation entirely.
    """

    plane = "fast"
    fused = False
    fused_trunc = True

    def __init__(
        self,
        fmt: FPFormat,
        runtime=None,
        module: Optional[str] = None,
        rounding: str = RoundingMode.NEAREST_EVEN,
    ) -> None:
        super().__init__(
            fmt,
            runtime=runtime,
            module=module,
            optimized=True,
            count_ops=False,
            track_memory=False,
            track_errors=False,
            rounding=rounding,
        )
        self.name = f"e{fmt.exp_bits}m{fmt.man_bits}-fast"

    @classmethod
    def from_context(cls, ctx: TruncatedContext) -> "TruncFastPlaneContext":
        """Clone an eligible instrumented truncating context onto the plane."""
        return cls(ctx.fmt, runtime=ctx.runtime, module=ctx.module, rounding=ctx.rounding)

    # no recording: evaluate in binary64, round the result — the exact
    # optimized TruncatedContext stream minus the counters
    def _apply(self, ufunc, inputs, label: str = ""):
        arrs = [np.asarray(x, dtype=np.float64) for x in inputs]
        return quantize(ufunc(*arrs), self.fmt, self.rounding)

    def _reduce(self, ufunc, a, axis: Optional[int] = None, label: str = ""):
        arr = np.asarray(a, dtype=np.float64)
        return quantize(ufunc.reduce(arr, axis=axis), self.fmt, self.rounding)

    def describe(self) -> str:
        return (
            f"TruncFastPlaneContext(e{self.fmt.exp_bits}m{self.fmt.man_bits}, "
            f"rounding={self.rounding}, fused truncating kernels, no counters)"
        )


# ---------------------------------------------------------------------------
# reconstruction stencils (twins of repro.kernels.fused)
# ---------------------------------------------------------------------------
def pcm(u, axis: int, ng: int, n: int, ws=None, key=(), *,
        fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN):
    """Piecewise-constant reconstruction: pure data movement, no FLOPs, so
    the truncating twin *is* the binary64 twin (views of ``u``)."""
    return fused.pcm(u, axis, ng, n)


def _minmod(a, b, q: _Q, ws=None, key=()):
    """minmod(a, b) with rounding at the product — the sign test uses the
    *quantised* product, exactly like the instrumented limiter."""
    o = _o(ws)
    shp = a.shape
    ab = np.multiply(a, b, out=o((*key, "ab"), shp))
    q(ab)
    same_sign = np.greater(ab, 0.0, out=o((*key, "ss"), shp, bool))
    # |a| < |b| on the raw operands: abs is quantise-closed
    absa = np.abs(a, out=o((*key, "absa"), shp))
    absb = np.abs(b, out=o((*key, "absb"), shp))
    lt = np.less(absa, absb, out=o((*key, "lt"), shp, bool))
    mag = where(lt, a, b, out=ab)  # ab's value is consumed; reuse its storage
    np.logical_not(same_sign, out=same_sign)
    np.copyto(mag, 0.0, where=same_sign)
    return mag


def plm(u, axis: int, ng: int, n: int, ws=None, key=(), *,
        fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN):
    """Piecewise-linear (minmod-limited) reconstruction, fused + truncating."""
    o = _o(ws)
    q = _Q(fmt, rounding, ws)
    um1 = fused._shift(u, axis, -1, ng, n)
    uc = fused._shift(u, axis, 0, ng, n)
    up1 = fused._shift(u, axis, 1, ng, n)
    up2 = fused._shift(u, axis, 2, ng, n)
    shp = uc.shape

    dl = np.subtract(uc, um1, out=o((*key, "dl"), shp))
    q(dl)
    dr = np.subtract(up1, uc, out=o((*key, "dr"), shp))
    q(dr)
    slope_left = _minmod(dl, dr, q, ws, (*key, "ml"))

    dl2 = np.subtract(up1, uc, out=dl)
    q(dl2)
    dr2 = np.subtract(up2, up1, out=dr)
    q(dr2)
    slope_right = _minmod(dl2, dr2, q, ws, (*key, "mr"))

    half = q.const(0.5)
    np.multiply(half, slope_left, out=slope_left)
    q(slope_left)
    left = np.add(uc, slope_left, out=o((*key, "left"), shp))
    q(left)
    np.multiply(half, slope_right, out=slope_right)
    q(slope_right)
    right = np.subtract(up1, slope_right, out=o((*key, "right"), shp))
    q(right)
    return left, right


def weno5_edge(um2, um1, u0, up1, up2, ws=None, key=(), out=None, *,
               fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN):
    """Jiang–Shu WENO5 right-edge value, fused + truncating.

    Same choreography as :func:`repro.kernels.fused.weno5_edge` with a
    rounding after every FLOP; the parenthesisation is the contract.
    """
    o = _o(ws)
    q = _Q(fmt, rounding, ws)
    shp = np.shape(u0)
    sixth = q.const(1.0 / 6.0)
    eps = q.const(_WENO_EPS)

    # candidate polynomials
    q0 = np.multiply(q.const(2.0), um2, out=o((*key, "q0"), shp))
    q(q0)
    t = np.multiply(q.const(7.0), um1, out=o((*key, "t"), shp))
    q(t)
    np.subtract(q0, t, out=q0)
    q(q0)
    t = np.multiply(q.const(11.0), u0, out=t)
    q(t)
    np.add(q0, t, out=q0)
    q(q0)
    np.multiply(sixth, q0, out=q0)
    q(q0)

    q1 = np.multiply(q.const(5.0), u0, out=o((*key, "q1"), shp))
    q(q1)
    np.subtract(q1, um1, out=q1)
    q(q1)
    t = np.multiply(q.const(2.0), up1, out=t)
    q(t)
    np.add(q1, t, out=q1)
    q(q1)
    np.multiply(sixth, q1, out=q1)
    q(q1)

    q2 = np.multiply(q.const(2.0), u0, out=o((*key, "q2"), shp))
    q(q2)
    t = np.multiply(q.const(5.0), up1, out=t)
    q(t)
    np.add(q2, t, out=q2)
    q(q2)
    np.subtract(q2, up2, out=q2)
    q(q2)
    np.multiply(sixth, q2, out=q2)
    q(q2)

    # smoothness indicators: beta_k = 13/12 d1^2 + 1/4 d2^2
    c1312 = q.const(13.0 / 12.0)
    quarter = q.const(0.25)
    t2 = o((*key, "t2"), shp)
    d1 = np.multiply(q.const(2.0), um1, out=t)
    q(d1)
    d1 = np.subtract(um2, d1, out=d1)
    q(d1)
    d1 = np.add(d1, u0, out=d1)
    q(d1)
    beta0 = np.multiply(d1, d1, out=o((*key, "b0"), shp))
    q(beta0)
    np.multiply(c1312, beta0, out=beta0)
    q(beta0)
    d2 = np.multiply(q.const(4.0), um1, out=t)
    q(d2)
    d2 = np.subtract(um2, d2, out=d2)
    q(d2)
    u3 = np.multiply(q.const(3.0), u0, out=t2)
    q(u3)
    d2 = np.add(d2, u3, out=d2)
    q(d2)
    sq = np.multiply(d2, d2, out=d2)
    q(sq)
    np.multiply(quarter, sq, out=sq)
    q(sq)
    np.add(beta0, sq, out=beta0)
    q(beta0)

    d1 = np.multiply(q.const(2.0), u0, out=t)
    q(d1)
    d1 = np.subtract(um1, d1, out=d1)
    q(d1)
    d1 = np.add(d1, up1, out=d1)
    q(d1)
    beta1 = np.multiply(d1, d1, out=o((*key, "b1"), shp))
    q(beta1)
    np.multiply(c1312, beta1, out=beta1)
    q(beta1)
    d2 = np.subtract(um1, up1, out=t)
    q(d2)
    sq = np.multiply(d2, d2, out=d2)
    q(sq)
    np.multiply(quarter, sq, out=sq)
    q(sq)
    np.add(beta1, sq, out=beta1)
    q(beta1)

    d1 = np.multiply(q.const(2.0), up1, out=t)
    q(d1)
    d1 = np.subtract(u0, d1, out=d1)
    q(d1)
    d1 = np.add(d1, up2, out=d1)
    q(d1)
    beta2 = np.multiply(d1, d1, out=o((*key, "b2"), shp))
    q(beta2)
    np.multiply(c1312, beta2, out=beta2)
    q(beta2)
    a3 = np.multiply(q.const(3.0), u0, out=t)
    q(a3)
    b4 = np.multiply(q.const(4.0), up1, out=t2)
    q(b4)
    d2 = np.subtract(a3, b4, out=a3)
    q(d2)
    d2 = np.add(d2, up2, out=d2)
    q(d2)
    sq = np.multiply(d2, d2, out=d2)
    q(sq)
    np.multiply(quarter, sq, out=sq)
    q(sq)
    np.add(beta2, sq, out=beta2)
    q(beta2)

    # nonlinear weights: w_k = c_k / (eps + beta_k)^2
    np.add(eps, beta0, out=beta0)
    q(beta0)
    np.square(beta0, out=beta0)
    q(beta0)
    w0 = np.divide(q.const(0.1), beta0, out=beta0)
    q(w0)
    np.add(eps, beta1, out=beta1)
    q(beta1)
    np.square(beta1, out=beta1)
    q(beta1)
    w1 = np.divide(q.const(0.6), beta1, out=beta1)
    q(w1)
    np.add(eps, beta2, out=beta2)
    q(beta2)
    np.square(beta2, out=beta2)
    q(beta2)
    w2 = np.divide(q.const(0.3), beta2, out=beta2)
    q(w2)

    wsum = np.add(w0, w1, out=t)
    q(wsum)
    np.add(wsum, w2, out=wsum)
    q(wsum)
    num = np.multiply(w0, q0, out=q0)
    q(num)
    t2 = np.multiply(w1, q1, out=q1)
    q(t2)
    np.add(num, t2, out=num)
    q(num)
    t2 = np.multiply(w2, q2, out=q2)
    q(t2)
    np.add(num, t2, out=num)
    q(num)
    if out is None:
        out = o((*key, "res"), shp)
    out = np.divide(num, wsum, out=out)
    return q(out)


def weno5(u, axis: int, ng: int, n: int, ws=None, key=(), *,
          fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN):
    """Fifth-order WENO reconstruction at the interior faces, truncating."""
    um2 = fused._shift(u, axis, -2, ng, n)
    um1 = fused._shift(u, axis, -1, ng, n)
    uc = fused._shift(u, axis, 0, ng, n)
    up1 = fused._shift(u, axis, 1, ng, n)
    up2 = fused._shift(u, axis, 2, ng, n)
    up3 = fused._shift(u, axis, 3, ng, n)

    left = weno5_edge(um2, um1, uc, up1, up2, ws, (*key, "L"),
                      fmt=fmt, rounding=rounding)
    right = weno5_edge(up3, up2, up1, uc, um1, ws, (*key, "R"),
                       fmt=fmt, rounding=rounding)
    return left, right


#: scheme name -> truncating implementation (same keys as fused.FUSED_SCHEMES)
TRUNC_SCHEMES = {"pcm": pcm, "plm": plm, "weno5": weno5}


# ---------------------------------------------------------------------------
# gamma-law EOS helpers (truncating twins of repro.kernels.flux)
# ---------------------------------------------------------------------------
def eos_sound_speed(dens, pres, gamma: float, ws=None, key=("cs",), *,
                    fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN):
    """c = sqrt(gamma * p / rho), truncating."""
    o = _o(ws)
    q = _Q(fmt, rounding, ws)
    shp = np.broadcast_shapes(np.shape(dens), np.shape(pres))
    gp = np.multiply(q.const(gamma), pres, out=o((*key, "gp"), shp))
    q(gp)
    np.divide(gp, dens, out=gp)
    q(gp)
    np.sqrt(gp, out=gp)
    return q(gp)


def eos_internal_energy(dens, pres, gamma: float, ws=None, key=("eint",), *,
                        fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN):
    """e_int = p / ((gamma - 1) rho), truncating."""
    o = _o(ws)
    q = _Q(fmt, rounding, ws)
    shp = np.broadcast_shapes(np.shape(dens), np.shape(pres))
    denom = np.multiply(q.const(gamma - 1.0), dens, out=o((*key, "denom"), shp))
    q(denom)
    np.divide(pres, denom, out=denom)
    return q(denom)


def eos_pressure_from_internal_energy(dens, eint, gamma: float, pressure_floor: float,
                                      ws=None, key=("pei",), *,
                                      fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN):
    """p = max((gamma - 1) rho e_int, floor), truncating."""
    o = _o(ws)
    q = _Q(fmt, rounding, ws)
    shp = np.broadcast_shapes(np.shape(dens), np.shape(eint))
    rho_e = np.multiply(dens, eint, out=o((*key, "rho_e"), shp))
    q(rho_e)
    pres = np.multiply(q.const(gamma - 1.0), rho_e, out=rho_e)
    q(pres)
    # maximum of two representable values is quantise-closed
    return np.maximum(pres, q.const(pressure_floor), out=pres)


def eos_total_energy(dens, velx, vely, pres, gamma: float, ws=None, key=("etot",),
                     out=None, *,
                     fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN):
    """E = rho e_int + 0.5 rho (u^2 + v^2), truncating."""
    o = _o(ws)
    q = _Q(fmt, rounding, ws)
    shp = np.broadcast_shapes(np.shape(dens), np.shape(velx), np.shape(vely), np.shape(pres))
    eint = eos_internal_energy(dens, pres, gamma, ws, (*key, "ei"),
                               fmt=fmt, rounding=rounding)
    u2 = np.multiply(velx, velx, out=o((*key, "u2"), shp))
    q(u2)
    v2 = np.multiply(vely, vely, out=o((*key, "v2"), shp))
    q(v2)
    kin = np.add(u2, v2, out=u2)
    q(kin)
    np.multiply(dens, kin, out=kin)
    q(kin)
    ke = np.multiply(q.const(0.5), kin, out=kin)
    q(ke)
    rho_eint = np.multiply(dens, eint, out=eint)
    q(rho_eint)
    if out is None:
        out = o((*key, "res"), shp)
    out = np.add(rho_eint, ke, out=out)
    return q(out)


def eos_pressure_from_total_energy(dens, momx, momy, ener, gamma: float,
                                   pressure_floor: float, density_floor: float,
                                   ws=None, key=("pte",), out=None, *,
                                   fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN):
    """Pressure from conserved variables (with floors), truncating."""
    o = _o(ws)
    q = _Q(fmt, rounding, ws)
    shp = np.broadcast_shapes(np.shape(dens), np.shape(momx), np.shape(momy), np.shape(ener))
    dens_f = np.maximum(dens, q.const(density_floor), out=o((*key, "df"), shp))
    velx = np.divide(momx, dens_f, out=o((*key, "u"), shp))
    q(velx)
    vely = np.divide(momy, dens_f, out=o((*key, "v"), shp))
    q(vely)
    mu_u = np.multiply(momx, velx, out=velx)
    q(mu_u)
    mv_v = np.multiply(momy, vely, out=vely)
    q(mv_v)
    kin = np.add(mu_u, mv_v, out=mu_u)
    q(kin)
    ke = np.multiply(q.const(0.5), kin, out=kin)
    q(ke)
    eint_dens = np.subtract(ener, ke, out=ke)
    q(eint_dens)
    pres = np.multiply(q.const(gamma - 1.0), eint_dens, out=eint_dens)
    q(pres)
    if out is None:
        out = o((*key, "res"), shp)
    return np.maximum(pres, q.const(pressure_floor), out=out)


# ---------------------------------------------------------------------------
# wave-speed estimates
# ---------------------------------------------------------------------------
def davis_wave_speeds(left: Dict, right: Dict, gamma: float, ws=None, key=("dws",), *,
                      fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN):
    """Davis estimates S_L = min(ul-cl, ur-cr), S_R = max(ul+cl, ur+cr)."""
    o = _o(ws)
    q = _Q(fmt, rounding, ws)
    cl = eos_sound_speed(left["dens"], left["pres"], gamma, ws, (*key, "cl"),
                         fmt=fmt, rounding=rounding)
    cr = eos_sound_speed(right["dens"], right["pres"], gamma, ws, (*key, "cr"),
                         fmt=fmt, rounding=rounding)
    shp = cl.shape
    a = np.subtract(left["velx"], cl, out=o((*key, "a"), shp))
    q(a)
    b = np.subtract(right["velx"], cr, out=o((*key, "b"), shp))
    q(b)
    sl = np.minimum(a, b, out=a)
    a2 = np.add(left["velx"], cl, out=cl)
    q(a2)
    b2 = np.add(right["velx"], cr, out=cr)
    q(b2)
    sr = np.maximum(a2, b2, out=a2)
    return sl, sr


def einfeldt_wave_speeds(left: Dict, right: Dict, gamma: float, ws=None, key=("ews",), *,
                         fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN):
    """Einfeldt (HLLE) estimates from Roe averages, truncating."""
    o = _o(ws)
    q = _Q(fmt, rounding, ws)
    cl = eos_sound_speed(left["dens"], left["pres"], gamma, ws, (*key, "cl"),
                         fmt=fmt, rounding=rounding)
    cr = eos_sound_speed(right["dens"], right["pres"], gamma, ws, (*key, "cr"),
                         fmt=fmt, rounding=rounding)
    shp = cl.shape
    sql = np.sqrt(left["dens"], out=o((*key, "sql"), shp))
    q(sql)
    sqr = np.sqrt(right["dens"], out=o((*key, "sqr"), shp))
    q(sqr)
    wsum = np.add(sql, sqr, out=o((*key, "wsum"), shp))
    q(wsum)
    # Roe-averaged normal velocity
    n1 = np.multiply(sql, left["velx"], out=o((*key, "n1"), shp))
    q(n1)
    n2 = np.multiply(sqr, right["velx"], out=o((*key, "n2"), shp))
    q(n2)
    np.add(n1, n2, out=n1)
    q(n1)
    u_roe = np.divide(n1, wsum, out=n1)
    q(u_roe)
    # Roe-averaged sound speed with Einfeldt's eta2 velocity-jump term
    cl2 = np.multiply(cl, cl, out=o((*key, "cl2"), shp))
    q(cl2)
    cr2 = np.multiply(cr, cr, out=o((*key, "cr2"), shp))
    q(cr2)
    np.multiply(sql, cl2, out=cl2)
    q(cl2)
    np.multiply(sqr, cr2, out=cr2)
    q(cr2)
    c2 = np.add(cl2, cr2, out=cl2)
    q(c2)
    c2_bar = np.divide(c2, wsum, out=c2)
    q(c2_bar)
    du = np.subtract(right["velx"], left["velx"], out=o((*key, "du"), shp))
    q(du)
    sqlr = np.multiply(sql, sqr, out=o((*key, "sqlr"), shp))
    q(sqlr)
    w2 = np.multiply(wsum, wsum, out=o((*key, "w2"), shp))
    q(w2)
    np.divide(sqlr, w2, out=sqlr)
    q(sqlr)
    eta = np.multiply(q.const(0.5), sqlr, out=sqlr)
    q(eta)
    du2 = np.multiply(du, du, out=o((*key, "du2"), shp))
    q(du2)
    np.multiply(eta, du2, out=du2)
    q(du2)
    croe2 = np.add(c2_bar, du2, out=c2_bar)
    q(croe2)
    c_roe = np.sqrt(croe2, out=croe2)
    q(c_roe)
    # S_L = min(ul - cl, u_roe - c_roe); S_R = max(ur + cr, u_roe + c_roe)
    a = np.subtract(left["velx"], cl, out=cl)
    q(a)
    b = np.subtract(u_roe, c_roe, out=o((*key, "b"), shp))
    q(b)
    sl = np.minimum(a, b, out=a)
    a2 = np.add(right["velx"], cr, out=cr)
    q(a2)
    b2 = np.add(u_roe, c_roe, out=b)
    q(b2)
    sr = np.maximum(a2, b2, out=a2)
    return sl, sr


# ---------------------------------------------------------------------------
# conserved state and physical flux
# ---------------------------------------------------------------------------
def conserved_state(state: Dict, gamma: float, ws=None, key=("cons",), *,
                    fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN) -> Dict:
    """Conserved variables of a primitive face state, truncating.

    ``dens`` aliases the input array (as in the instrumented twin).
    """
    o = _o(ws)
    q = _Q(fmt, rounding, ws)
    dens, velx, vely = state["dens"], state["velx"], state["vely"]
    shp = np.shape(dens)
    momn = np.multiply(dens, velx, out=o((*key, "momn"), shp))
    q(momn)
    momt = np.multiply(dens, vely, out=o((*key, "momt"), shp))
    q(momt)
    ener = eos_total_energy(dens, velx, vely, state["pres"], gamma, ws, (*key, "en"),
                            out=o((*key, "ener"), shp), fmt=fmt, rounding=rounding)
    return {"dens": dens, "momn": momn, "momt": momt, "ener": ener}


def euler_flux(state: Dict, gamma: float, ws=None, key=("ef",),
               cons: Optional[Dict] = None, *,
               fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN) -> Dict:
    """Physical Euler flux normal to the face, truncating."""
    o = _o(ws)
    q = _Q(fmt, rounding, ws)
    velx, pres = state["velx"], state["pres"]
    if cons is None:
        cons = conserved_state(state, gamma, ws, (*key, "c"), fmt=fmt, rounding=rounding)
    shp = np.shape(cons["momn"])
    f_dens = cons["momn"]
    mn_u = np.multiply(cons["momn"], velx, out=o((*key, "momn"), shp))
    q(mn_u)
    f_momn = np.add(mn_u, pres, out=mn_u)
    q(f_momn)
    f_momt = np.multiply(cons["momt"], velx, out=o((*key, "momt"), shp))
    q(f_momt)
    ep = np.add(cons["ener"], pres, out=o((*key, "ener"), shp))
    q(ep)
    f_ener = np.multiply(ep, velx, out=ep)
    q(f_ener)
    return {"dens": f_dens, "momn": f_momn, "momt": f_momt, "ener": f_ener}


# ---------------------------------------------------------------------------
# Riemann solvers
# ---------------------------------------------------------------------------
def _hll_from_speeds(sl, sr, left: Dict, right: Dict, gamma: float, ws, key, *,
                     fmt: FPFormat, rounding: str) -> Dict:
    """HLL combination for given (already quantised) wave speeds."""
    o = _o(ws)
    q = _Q(fmt, rounding, ws)
    ul = conserved_state(left, gamma, ws, (*key, "ul"), fmt=fmt, rounding=rounding)
    ur = conserved_state(right, gamma, ws, (*key, "ur"), fmt=fmt, rounding=rounding)
    fl = euler_flux(left, gamma, ws, (*key, "fl"), cons=ul, fmt=fmt, rounding=rounding)
    fr = euler_flux(right, gamma, ws, (*key, "fr"), cons=ur, fmt=fmt, rounding=rounding)

    shp = np.shape(sl)
    # region predicates on the quantised wave speeds (the instrumented
    # solver compares ctx.asplain(sl/sr), which are these very values)
    use_left = np.greater_equal(sl, 0.0, out=o((*key, "usel"), shp, bool))
    use_right = np.less_equal(sr, 0.0, out=o((*key, "user"), shp, bool))
    denom = np.subtract(sr, sl, out=o((*key, "den"), shp))
    q(denom)
    slsr = np.multiply(sl, sr, out=o((*key, "slsr"), shp))
    q(slsr)

    flux: Dict = {}
    for comp in COMPONENTS:
        a = np.multiply(sr, fl[comp], out=o((*key, "t1"), shp))
        q(a)
        b = np.multiply(sl, fr[comp], out=o((*key, "t2"), shp))
        q(b)
        diff = np.subtract(a, b, out=a)
        q(diff)
        du = np.subtract(ur[comp], ul[comp], out=b)
        q(du)
        np.multiply(slsr, du, out=du)
        q(du)
        num = np.add(diff, du, out=diff)
        q(num)
        middle = np.divide(num, denom, out=num)
        q(middle)
        inner = where(use_right, fr[comp], middle, out=middle)
        flux[comp] = where(use_left, fl[comp], inner, out=o((*key, "f", comp), shp))
    return flux


def hll_flux(left: Dict, right: Dict, gamma: float, ws=None, key=("hll",), *,
             fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN) -> Dict:
    """Harten–Lax–van Leer flux, truncating (Davis wave speeds)."""
    sl, sr = davis_wave_speeds(left, right, gamma, ws, (*key, "w"),
                               fmt=fmt, rounding=rounding)
    return _hll_from_speeds(sl, sr, left, right, gamma, ws, key,
                            fmt=fmt, rounding=rounding)


def hlle_flux(left: Dict, right: Dict, gamma: float, ws=None, key=("hlle",), *,
              fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN) -> Dict:
    """HLLE flux, truncating (Einfeldt wave speeds on the HLL combination)."""
    sl, sr = einfeldt_wave_speeds(left, right, gamma, ws, (*key, "w"),
                                  fmt=fmt, rounding=rounding)
    return _hll_from_speeds(sl, sr, left, right, gamma, ws, key,
                            fmt=fmt, rounding=rounding)


def hllc_flux(left: Dict, right: Dict, gamma: float, ws=None, key=("hllc",), *,
              fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN) -> Dict:
    """HLLC flux, truncating (restores the contact wave missing from HLL)."""
    o = _o(ws)
    q = _Q(fmt, rounding, ws)
    sl, sr = davis_wave_speeds(left, right, gamma, ws, (*key, "w"),
                               fmt=fmt, rounding=rounding)
    ul = conserved_state(left, gamma, ws, (*key, "ul"), fmt=fmt, rounding=rounding)
    ur = conserved_state(right, gamma, ws, (*key, "ur"), fmt=fmt, rounding=rounding)
    fl = euler_flux(left, gamma, ws, (*key, "fl"), cons=ul, fmt=fmt, rounding=rounding)
    fr = euler_flux(right, gamma, ws, (*key, "fr"), cons=ur, fmt=fmt, rounding=rounding)

    dl, dr = left["dens"], right["dens"]
    vl, vr = left["velx"], right["velx"]
    pl, pr = left["pres"], right["pres"]
    shp = np.shape(sl)

    # contact (star) speed
    t = np.subtract(sl, vl, out=o((*key, "slvl"), shp))
    q(t)
    dl_slvl = np.multiply(dl, t, out=t)
    q(dl_slvl)
    t = np.subtract(sr, vr, out=o((*key, "srvr"), shp))
    q(t)
    dr_srvr = np.multiply(dr, t, out=t)
    q(dr_srvr)
    dp = np.subtract(pr, pl, out=o((*key, "dp"), shp))
    q(dp)
    m1 = np.multiply(dl_slvl, vl, out=o((*key, "m1"), shp))
    q(m1)
    m2 = np.multiply(dr_srvr, vr, out=o((*key, "m2"), shp))
    q(m2)
    mom_diff = np.subtract(m1, m2, out=m1)
    q(mom_diff)
    num = np.add(dp, mom_diff, out=dp)
    q(num)
    den = np.subtract(dl_slvl, dr_srvr, out=o((*key, "sden"), shp))
    q(den)
    s_star = np.divide(num, den, out=num)
    q(s_star)

    def star_state(state, cons, s_k, d_slv, k):
        """Conserved state in the star region behind wave ``s_k``."""
        t1 = np.subtract(s_k, s_star, out=o((*k, "t1"), shp))
        q(t1)
        factor = np.divide(d_slv, t1, out=t1)
        q(factor)
        momn_star = np.multiply(factor, s_star, out=o((*k, "mn"), shp))
        q(momn_star)
        momt_star = np.multiply(factor, state["vely"], out=o((*k, "mt"), shp))
        q(momt_star)
        e_over_d = np.divide(cons["ener"], state["dens"], out=o((*k, "eod"), shp))
        q(e_over_d)
        t2 = np.subtract(s_k, state["velx"], out=o((*k, "t2"), shp))
        q(t2)
        d_skv = np.multiply(state["dens"], t2, out=t2)
        q(d_skv)
        p_term = np.divide(state["pres"], d_skv, out=d_skv)
        q(p_term)
        a = np.subtract(s_star, state["velx"], out=o((*k, "a"), shp))
        q(a)
        b = np.add(s_star, p_term, out=p_term)
        q(b)
        m = np.multiply(a, b, out=a)
        q(m)
        bracket = np.add(e_over_d, m, out=e_over_d)
        q(bracket)
        ener_star = np.multiply(factor, bracket, out=bracket)
        q(ener_star)
        return {"dens": factor, "momn": momn_star, "momt": momt_star, "ener": ener_star}

    ul_star = star_state(left, ul, sl, dl_slvl, (*key, "sL"))
    ur_star = star_state(right, ur, sr, dr_srvr, (*key, "sR"))

    # region predicates on the quantised speeds
    region_l = np.greater_equal(sl, 0.0, out=o((*key, "rl"), shp, bool))
    b1 = np.less(sl, 0.0, out=o((*key, "b1"), shp, bool))
    b2 = np.greater_equal(s_star, 0.0, out=o((*key, "b2"), shp, bool))
    region_ls = np.logical_and(b1, b2, out=b1)
    b3 = np.less(s_star, 0.0, out=o((*key, "b3"), shp, bool))
    b4 = np.greater(sr, 0.0, out=o((*key, "b4"), shp, bool))
    region_rs = np.logical_and(b3, b4, out=b3)

    flux: Dict = {}
    for comp in COMPONENTS:
        d1 = np.subtract(ul_star[comp], ul[comp], out=o((*key, "d1"), shp))
        q(d1)
        np.multiply(sl, d1, out=d1)
        q(d1)
        fl_star = np.add(fl[comp], d1, out=d1)
        q(fl_star)
        d2 = np.subtract(ur_star[comp], ur[comp], out=o((*key, "d2"), shp))
        q(d2)
        np.multiply(sr, d2, out=d2)
        q(d2)
        fr_star = np.add(fr[comp], d2, out=d2)
        q(fr_star)
        out_ = where(region_l, fl[comp], fr[comp], out=o((*key, "f", comp), shp))
        out_ = where(region_ls, fl_star, out_, out=out_)
        out_ = where(region_rs, fr_star, out_, out=out_)
        flux[comp] = out_
    return flux


#: solver name -> truncating implementation (same keys as riemann.SOLVERS)
TRUNC_SOLVERS = {"hll": hll_flux, "hllc": hllc_flux, "hlle": hlle_flux}


# ---------------------------------------------------------------------------
# the full directional sweep and block update
# ---------------------------------------------------------------------------
def directional_flux(prims: Dict, axis: int, ng: int, n: int, scheme: str, solver: str,
                     gamma: float, dens_floor: float, pres_floor: float,
                     ws: Optional[Workspace] = None, *,
                     fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN) -> Dict:
    """Fluxes at the ``n+1`` interior faces along ``axis``, truncating.

    ``prims`` must already be representable in ``fmt`` (the instrumented
    solver lifts them through ``ctx.const``; :func:`advance` does the same
    before calling here).
    """
    o = _o(ws)
    q = _Q(fmt, rounding, ws)
    normal, transverse = ("velx", "vely") if axis == 0 else ("vely", "velx")
    recon = TRUNC_SCHEMES[scheme]
    left: Dict = {}
    right: Dict = {}
    for target, source in (("dens", "dens"), ("velx", normal), ("vely", transverse), ("pres", "pres")):
        l, r = recon(prims[source], axis, ng, n, ws=ws, key=(axis, "r", target),
                     fmt=fmt, rounding=rounding)
        left[target] = l
        right[target] = r

    # keep reconstructed density/pressure physical (never in place: pcm
    # returns views of the caller's primitive arrays); the floors are
    # quantise-closed maxima of representable values
    shp = np.shape(left["dens"])
    qdf = q.const(dens_floor)
    qpf = q.const(pres_floor)
    left["dens"] = np.maximum(left["dens"], qdf, out=o((axis, "lfd"), shp))
    right["dens"] = np.maximum(right["dens"], qdf, out=o((axis, "rfd"), shp))
    left["pres"] = np.maximum(left["pres"], qpf, out=o((axis, "lfp"), shp))
    right["pres"] = np.maximum(right["pres"], qpf, out=o((axis, "rfp"), shp))

    flux = TRUNC_SOLVERS[solver](left, right, gamma, ws, (axis, solver),
                                 fmt=fmt, rounding=rounding)
    if axis == 0:
        return {"dens": flux["dens"], "momx": flux["momn"], "momy": flux["momt"], "ener": flux["ener"]}
    return {"dens": flux["dens"], "momx": flux["momt"], "momy": flux["momn"], "ener": flux["ener"]}


def advance(prims: Dict, dt: float, dx: float, dy: float, ng: int, nxb: int, nyb: int, *,
            scheme: str, solver: str, gamma: float, dens_floor: float, pres_floor: float,
            gravity: Tuple[float, float] = (0.0, 0.0),
            fmt: FPFormat, rounding: str = RoundingMode.NEAREST_EVEN,
            ws: Optional[Workspace] = None) -> Dict:
    """One flux-divergence update of a block (or stack of blocks), truncating.

    Twin of ``HydroSolver.advance_block`` under an optimized truncating
    context.  The guard-cell-filled primitives are first *lifted* — rounded
    whole into ``fmt``, the twin of the solver's ``ctx.const`` lift — then
    the fused truncating pipeline runs with a quantisation at every op
    boundary.  Returns the new interior primitives as **fresh** arrays.
    """
    o = _o(ws)
    q = _Q(fmt, rounding, ws)

    # lift: quantise the guard-filled inputs once at block entry
    lifted: Dict = {}
    for name, v in prims.items():
        buf = o(("lift", name), np.shape(v))
        lifted[name] = quantize_into(v, fmt, rounding, ws, out=buf)

    # x-sweep uses interior rows in y; y-sweep interior columns in x
    prims_x = {k: v[..., :, ng:ng + nyb] for k, v in lifted.items()}
    prims_y = {k: v[..., ng:ng + nxb, :] for k, v in lifted.items()}
    flux_x = directional_flux(prims_x, 0, ng, nxb, scheme, solver,
                              gamma, dens_floor, pres_floor, ws,
                              fmt=fmt, rounding=rounding)
    flux_y = directional_flux(prims_y, 1, ng, nyb, scheme, solver,
                              gamma, dens_floor, pres_floor, ws,
                              fmt=fmt, rounding=rounding)

    interior = {k: v[..., ng:ng + nxb, ng:ng + nyb] for k, v in lifted.items()}
    dens, velx, vely, pres = (interior[k] for k in ("dens", "velx", "vely", "pres"))
    shp = np.shape(dens)
    momx = np.multiply(dens, velx, out=o(("u", "momx"), shp))
    q(momx)
    momy = np.multiply(dens, vely, out=o(("u", "momy"), shp))
    q(momy)
    ener = eos_total_energy(dens, velx, vely, pres, gamma, ws, ("u", "en"),
                            out=o(("u", "ener"), shp), fmt=fmt, rounding=rounding)
    cons = {"dens": dens, "momx": momx, "momy": momy, "ener": ener}

    # per-step scalars are quantised like ctx.const(dt / dx) — uncached
    dtdx = q.dyn(dt / dx)
    dtdy = q.dyn(dt / dy)
    new_cons: Dict = {}
    for comp in ("dens", "momx", "momy", "ener"):
        fx = flux_x[comp]
        fy = flux_y[comp]
        div_x = np.subtract(fx[..., 1:, :], fx[..., :-1, :], out=o(("u", "divx"), shp))
        q(div_x)
        div_y = np.subtract(fy[..., :, 1:], fy[..., :, :-1], out=o(("u", "divy"), shp))
        q(div_y)
        np.multiply(dtdx, div_x, out=div_x)
        q(div_x)
        np.multiply(dtdy, div_y, out=div_y)
        q(div_y)
        change = np.add(div_x, div_y, out=div_x)
        q(change)
        new_cons[comp] = np.subtract(cons[comp], change, out=o(("u", "new", comp), shp))
        q(new_cons[comp])

    # constant-gravity source term (matches the instrumented operation
    # stream: skipped entirely when gravity is off)
    gx, gy = gravity
    if gx != 0.0 or gy != 0.0:
        if gx != 0.0:
            dtgx = q.dyn(dt * gx)
            src = np.multiply(dens, dtgx, out=o(("u", "src"), shp))
            q(src)
            np.add(new_cons["momx"], src, out=new_cons["momx"])
            q(new_cons["momx"])
            np.multiply(momx, dtgx, out=src)
            q(src)
            np.add(new_cons["ener"], src, out=new_cons["ener"])
            q(new_cons["ener"])
        if gy != 0.0:
            dtgy = q.dyn(dt * gy)
            src = np.multiply(dens, dtgy, out=o(("u", "src"), shp))
            q(src)
            np.add(new_cons["momy"], src, out=new_cons["momy"])
            q(new_cons["momy"])
            np.multiply(momy, dtgy, out=src)
            q(src)
            np.add(new_cons["ener"], src, out=new_cons["ener"])
            q(new_cons["ener"])

    # conserved -> primitive, with floors; outputs are deliberately fresh
    new_dens = np.maximum(new_cons["dens"], q.const(dens_floor))
    new_velx = np.divide(new_cons["momx"], new_dens)
    q(new_velx)
    new_vely = np.divide(new_cons["momy"], new_dens)
    q(new_vely)
    new_pres = eos_pressure_from_total_energy(
        new_dens, new_cons["momx"], new_cons["momy"], new_cons["ener"],
        gamma, pres_floor, dens_floor, ws, ("u", "pte"), out=np.empty(shp),
        fmt=fmt, rounding=rounding,
    )
    return {"dens": new_dens, "velx": new_velx, "vely": new_vely, "pres": new_pres}
