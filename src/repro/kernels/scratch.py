"""Preallocated scratch workspaces for the fused fast plane.

The fused kernels of :mod:`repro.kernels.fused` and
:mod:`repro.kernels.flux` are straight-line numpy; without help every call
allocates a fresh temporary per ufunc, and on sweep-scale 8x8 AMR blocks
that allocation churn is a measurable fraction of the hot loop.  A
:class:`Workspace` removes it: kernels request named output buffers via
:meth:`Workspace.out` and thread them through ``out=``, so after the first
call over a given block shape the whole flux pipeline runs with zero
allocations.

Buffers are keyed by ``(key, shape, dtype)`` where ``key`` encodes the call
site (typically ``(axis, stage, name)``), so the same workspace serves both
sweep directions, every variable and every batched block shape at once, and
is reused across substeps and steps.  A workspace is *scratch*: no buffer's
content is assumed to survive between kernel invocations, and every fused
kernel produces bit-identical results with or without one (``out=`` never
changes ufunc rounding, and the kernels never write into caller-owned
arrays).

Workspaces are deliberately cheap to drop: pickling or deep-copying one
(e.g. when a solver crosses a process boundary) yields a fresh, empty
workspace.

Two environment switches gate the fast-plane optimisations that build on
this module (both default to *on*; they exist for benchmarking and
debugging, the results are bit-identical either way):

* ``RAPTOR_FAST_NO_SCRATCH=1`` — fused kernels run without preallocated
  buffers (every temporary freshly allocated, as before PR 5);
* ``RAPTOR_FAST_NO_BATCH=1`` — the hydro solver advances AMR blocks one at
  a time instead of stacking same-shaped blocks into one batched kernel
  invocation per level;
* ``RAPTOR_FAST_NO_GRID=1`` — the fused grid plane (:mod:`repro.kernels.
  grid`: precomputed guard-fill plans, batched ``compute_dt``, stacked
  regrid estimators, scratch-buffered bubble paddings) is disabled and the
  per-block Python reference paths run instead;
* ``RAPTOR_FAST_NO_BUBBLE=1`` — the fused bubble plane
  (:mod:`repro.kernels.bubble`: scratch-buffered advection/diffusion/
  level-set/projection twins of the incompressible solver) is disabled and
  the op-by-op context paths run instead.
"""
from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "Workspace",
    "NULL_WORKSPACE",
    "out_accessor",
    "scratch_enabled",
    "batching_enabled",
    "grid_plane_enabled",
    "bubble_plane_enabled",
    "make_workspace",
]


def _env_truthy(value) -> bool:
    """Interpret an environment-variable value as a boolean switch (same
    convention as ``repro.parallel.executor``: anything but an explicit
    falsy spelling counts as set)."""
    if value is None:
        return False
    return value.strip().lower() not in ("", "0", "false", "no", "off")


def scratch_enabled() -> bool:
    """Whether fused kernels should use preallocated scratch buffers."""
    return not _env_truthy(os.environ.get("RAPTOR_FAST_NO_SCRATCH"))


def batching_enabled() -> bool:
    """Whether the hydro solver may batch same-shaped blocks per substep."""
    return not _env_truthy(os.environ.get("RAPTOR_FAST_NO_BATCH"))


def grid_plane_enabled() -> bool:
    """Whether the fused grid plane (guard-fill plans, batched dt, stacked
    estimators) is active.  The grid side is context-free plain numpy, so
    the switch is bit-neutral on every kernel plane."""
    return not _env_truthy(os.environ.get("RAPTOR_FAST_NO_GRID"))


def bubble_plane_enabled() -> bool:
    """Whether the fused bubble plane (:mod:`repro.kernels.bubble`:
    scratch-buffered twins of the incompressible solver's advection,
    diffusion, level-set and projection operators) is active.  The twins
    are bit-identical to the op-by-op context paths on every kernel plane,
    so the switch exists for benchmarking and debugging only."""
    return not _env_truthy(os.environ.get("RAPTOR_FAST_NO_BUBBLE"))


def make_workspace() -> Optional["Workspace"]:
    """A fresh :class:`Workspace`, or ``None`` when scratch is disabled."""
    return Workspace() if scratch_enabled() else None


class Workspace:
    """A pool of named, preallocated scratch arrays.

    ``out(key, shape, dtype)`` returns the buffer registered under
    ``(key, shape, dtype)``, allocating it on first use.  Callers pass the
    result straight to a ufunc's ``out=``; distinct keys guarantee distinct
    storage, so a kernel keeps values alive exactly as long as it keeps
    their keys unique.

    Batched kernels key their buffers by the stacked shape, so a long AMR
    run whose per-level block counts keep changing (regridding) would
    accumulate one buffer family per group size ever seen.  ``max_bytes``
    bounds that growth: once the pool exceeds the cap, :meth:`trim` drops
    the *stale* buffers — those not requested since the previous trim —
    and keeps the live working set, so an oversized working set is never
    thrashed (a pool whose fresh buffers alone exceed the cap simply stays
    resident).  Trimming invalidates the dropped buffers, so callers must
    only invoke it at a quiescent point (the hydro solver trims between
    substeps, where no scratch value is live by construction).
    """

    __slots__ = ("_buffers", "_last_used", "_generation", "hits", "misses",
                 "max_bytes", "trims")

    #: default soft cap — generous next to the ~2 MB steady-state working
    #: set of an 8x8-block pipeline, small next to any real host
    DEFAULT_MAX_BYTES = 64 * 2 ** 20

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self._buffers: Dict[Tuple, np.ndarray] = {}
        self._last_used: Dict[Tuple, int] = {}
        self._generation = 0
        self.hits = 0
        self.misses = 0
        self.max_bytes = int(max_bytes)
        self.trims = 0

    def out(self, key, shape, dtype=np.float64) -> np.ndarray:
        """The scratch buffer for ``key`` at ``shape``/``dtype``."""
        full = (key, tuple(shape), np.dtype(dtype).char)
        buf = self._buffers.get(full)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[full] = buf
            self.misses += 1
        else:
            self.hits += 1
        self._last_used[full] = self._generation
        return buf

    # ------------------------------------------------------------------
    @property
    def n_buffers(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        """Total bytes held by the workspace."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self) -> None:
        """Drop every buffer (counters kept)."""
        self._buffers.clear()
        self._last_used.clear()

    def trim(self) -> bool:
        """Drop the stale buffers if the pool exceeds ``max_bytes``.

        Stale = not requested since the previous :meth:`trim` call, i.e.
        outside the current working set (old batch-group shapes after a
        regrid).  Fresh buffers are always kept, so a working set larger
        than the cap is never thrashed.  Call only at quiescent points —
        no scratch value may be live.  Returns whether buffers were
        dropped.
        """
        generation = self._generation
        self._generation = generation + 1
        if self.nbytes <= self.max_bytes:
            return False
        stale = [key for key, used in self._last_used.items() if used < generation]
        for key in stale:
            del self._buffers[key]
            del self._last_used[key]
        if stale:
            self.trims += 1
        return bool(stale)

    # ------------------------------------------------------------------
    # a workspace is pure scratch: crossing a process boundary (pickle) or
    # being deep-copied yields a fresh, empty one
    def __reduce__(self):
        return (Workspace, ())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Workspace(buffers={self.n_buffers}, nbytes={self.nbytes}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class _NullWorkspace:
    """Stand-in used when no workspace is supplied: ``out`` returns ``None``
    so ufuncs allocate normally (``np.ufunc(..., out=None)`` is the default
    allocating path)."""

    __slots__ = ()
    hits = 0
    misses = 0

    def out(self, key, shape, dtype=np.float64):
        return None


#: module-level singleton handed to fused kernels called without a workspace
NULL_WORKSPACE = _NullWorkspace()


def out_accessor(ws):
    """The ``out`` accessor of ``ws`` — the single null-workspace fallback
    shared by every fused kernel (``ws=None`` means "allocate normally")."""
    return (ws if ws is not None else NULL_WORKSPACE).out
