"""The fused binary64 fast plane.

:class:`FastPlaneContext` is a drop-in :class:`~repro.core.opmode.FPContext`
that executes every operation as plain vectorized numpy on binary64 data —
no operand re-quantisation, no per-op counter updates, no runtime locks, no
label/location bookkeeping.  Each arithmetic method is a direct ufunc call,
so the only remaining per-op cost is the method dispatch itself; kernels
that want to shed even that check the :attr:`FastPlaneContext.fused` flag
and call the pre-fused numpy kernels in :mod:`repro.kernels.fused` — or,
for the whole compressible flux stack (EOS, wave speeds, Riemann solvers,
block updates), the fused pipeline of :mod:`repro.kernels.flux`, which
additionally threads preallocated scratch buffers
(:mod:`repro.kernels.scratch`) and batches same-shaped AMR blocks.

The contract — and the reason the plane may be substituted silently for a
non-truncating instrumented context — is **bitwise identity**: for binary64
inputs every method returns exactly the bits the instrumented
:class:`~repro.core.opmode.FullPrecisionContext` would return, because both
evaluate the same ufuncs in the same order (reductions included, which go
through ``ufunc.reduce`` on both planes).  The plane is therefore only ever
selected for contexts that neither truncate nor record (see
:mod:`repro.kernels.dispatch`); truncating and shadow contexts *are* the
measurement and always stay on the instrumented plane.
"""
from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.opmode import FullPrecisionContext
from ..core.runtime import RaptorRuntime

__all__ = ["FastPlaneContext"]


class FastPlaneContext(FullPrecisionContext):
    """Plain-numpy binary64 execution with zero per-op instrumentation.

    Subclasses :class:`FullPrecisionContext` so call sites that dispatch on
    context type (``isinstance(ctx, FullPrecisionContext)``, ``truncating``,
    ``ShadowContext`` checks) treat it exactly like the full-precision
    context it replaces.  ``count_ops`` / ``track_memory`` are forced off:
    nothing this context executes reaches the runtime counters.
    """

    name = "fp64-fast"
    plane = "fast"
    fused = True

    def __init__(
        self,
        runtime: Optional[RaptorRuntime] = None,
        module: Optional[str] = None,
    ) -> None:
        super().__init__(runtime=runtime, count_ops=False, track_memory=False, module=module)

    # -- generic paths (anything not overridden below) -----------------------
    def _apply(self, ufunc, inputs, label):
        return ufunc(*inputs)

    def _reduce(self, ufunc, a, axis, label):
        return ufunc.reduce(np.asarray(a, dtype=np.float64), axis=axis)

    # -- binary arithmetic: direct ufunc calls, no label, no recording -------
    def add(self, a, b, label=""):
        return np.add(a, b)

    def sub(self, a, b, label=""):
        return np.subtract(a, b)

    def mul(self, a, b, label=""):
        return np.multiply(a, b)

    def div(self, a, b, label=""):
        return np.divide(a, b)

    def power(self, a, b, label=""):
        return np.power(a, b)

    def maximum(self, a, b, label=""):
        return np.maximum(a, b)

    def minimum(self, a, b, label=""):
        return np.minimum(a, b)

    def copysign(self, a, b, label=""):
        return np.copysign(a, b)

    # -- unary arithmetic -----------------------------------------------------
    def neg(self, a, label=""):
        return np.negative(a)

    def abs(self, a, label=""):
        return np.abs(a)

    def sqrt(self, a, label=""):
        return np.sqrt(a)

    def exp(self, a, label=""):
        return np.exp(a)

    def log(self, a, label=""):
        return np.log(a)

    def log10(self, a, label=""):
        return np.log10(a)

    def sin(self, a, label=""):
        return np.sin(a)

    def cos(self, a, label=""):
        return np.cos(a)

    def tanh(self, a, label=""):
        return np.tanh(a)

    def square(self, a, label=""):
        return np.square(a)

    def reciprocal(self, a, label=""):
        return np.reciprocal(a)

    # -- composites / reductions ----------------------------------------------
    def fma(self, a, b, c, label=""):
        return np.add(np.multiply(a, b), c)

    def dot(self, a, b, label=""):
        # mul + add-tree, exactly like the instrumented plane (which reduces
        # the product through np.add.reduce)
        prod = np.multiply(np.asarray(a).ravel(), np.asarray(b).ravel())
        return np.add.reduce(prod)

    def sum(self, a, axis=None, label=""):
        return np.add.reduce(np.asarray(a, dtype=np.float64), axis=axis)

    def max(self, a, axis=None, label=""):
        return np.maximum.reduce(np.asarray(a, dtype=np.float64), axis=axis)

    def min(self, a, axis=None, label=""):
        return np.minimum.reduce(np.asarray(a, dtype=np.float64), axis=axis)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        return "FastPlaneContext(binary64, fused)"
