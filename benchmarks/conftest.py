"""Shared configuration for the experiment-reproduction benchmarks.

Every file in this directory regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index).  The harness prints the same rows /
series the paper reports and stores them as JSON under
``benchmarks/results/`` so EXPERIMENTS.md can reference them.  Result files
follow one naming convention: ``BENCH_<name>.json`` (:func:`save_results`
applies the prefix).

The default configurations are deliberately small (laptop-scale, a few
minutes for the whole directory).  Set ``RAPTOR_BENCH_FULL=1`` for a denser
mantissa sweep closer to the paper's (at a correspondingly longer runtime).
"""
from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

FULL_SWEEP = os.environ.get("RAPTOR_BENCH_FULL", "0") not in ("0", "", "false", "False")

#: mantissa widths swept by the error-vs-precision experiments
MANTISSA_POINTS = (
    tuple(range(4, 53, 4)) if FULL_SWEEP else (4, 8, 12, 18, 23, 36, 52)
)


def save_results(name: str, payload) -> Path:
    """Write a benchmark record to ``results/BENCH_<name>.json``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=str)
    return path


def print_table(title: str, headers, rows) -> None:
    from repro.core import format_table

    print(f"\n=== {title} ===")
    print(format_table(headers, rows))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
