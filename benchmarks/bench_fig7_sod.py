"""Figure 7b: Sod — L1 density error and FP-op counts vs mantissa width.

Same protocol as Figure 7a but for the Sod shock tube and cutoffs M−0 … M−2
(the paper's Sod figure has one panel fewer because no leaf blocks remain at
the M−3 level).  Like Figure 7a, the sweep runs through the declarative
engine of :mod:`repro.experiments` with unchanged reported numbers.

Expected shape (paper): the cutoff strategy helps Sod much less than Sedov —
at most about an order of magnitude — because the solution profile stretches
across coarser blocks.
"""
from __future__ import annotations

import pytest

from repro.core import FPFormat
from repro.experiments import PolicySpec, SweepSpec, run_sweep

from conftest import MANTISSA_POINTS, print_table, save_results

CUTOFFS = (0, 1, 2)

SOD_CONFIG = dict(
    nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=3,
    t_end=0.04, rk_stages=1, reconstruction="plm",
)


def run_experiment():
    spec = SweepSpec(
        workloads=["sod"],
        formats=[FPFormat(11, man_bits) for man_bits in MANTISSA_POINTS],
        policies=[PolicySpec.amr_cutoff(cutoff, modules=("hydro",)) for cutoff in CUTOFFS],
        workload_configs={"sod": SOD_CONFIG},
        variables=("dens",),
    )
    result = run_sweep(spec)

    rows = []
    series = {}
    point_iter = iter(result.points)
    for cutoff in CUTOFFS:
        series[cutoff] = []
        for man_bits in MANTISSA_POINTS:
            point = next(point_iter)
            # the grid enumerates policy-major/format-minor; make the row
            # labelling self-checking rather than trusting iteration order
            assert point.policy == f"M-{cutoff}[hydro]", point.policy
            assert point.fmt.man_bits == man_bits, (point.fmt, man_bits)
            error = point.l1("dens")
            gflops_trunc, gflops_full = point.giga_ops
            record = {
                "cutoff": f"M-{cutoff}",
                "man_bits": man_bits,
                "l1_dens": error,
                "truncated_fraction": point.truncated_fraction,
                "giga_ops_truncated": gflops_trunc,
                "giga_ops_full": gflops_full,
                "truncated_bytes": point.mem["truncated"],
                "full_bytes": point.mem["full"],
                "n_leaves": point.info["n_leaves"],
            }
            series[cutoff].append(record)
            rows.append(
                [f"M-{cutoff}", man_bits, f"{error:.3e}", f"{point.truncated_fraction:.1%}",
                 f"{gflops_trunc:.4f}", f"{gflops_full:.4f}"]
            )
    # wall-clock of the sweep on the current kernel plane (the reference
    # task rides the fused fast plane under the default "auto"), so the
    # perf trajectory of this figure is tracked alongside its numbers
    timing = {
        "plane": spec.plane,
        "elapsed_seconds": result.elapsed_seconds,
        "total_point_seconds": result.total_point_seconds,
    }
    return rows, series, timing


@pytest.mark.benchmark(group="figure7b")
def test_fig7b_sod_error_vs_mantissa(benchmark):
    rows, series, timing = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "Figure 7b — Sod: L1 density error vs mantissa bits per AMR cutoff",
        ["cutoff", "mantissa", "L1(dens)", "trunc ops", "Gops trunc", "Gops full"],
        rows,
    )
    save_results("fig7b_sod", {"cutoffs": series, "timing": timing})
    assert timing["elapsed_seconds"] > 0

    by_cutoff = {c: {r["man_bits"]: r for r in recs} for c, recs in series.items()}
    smallest, widest = min(MANTISSA_POINTS), max(MANTISSA_POINTS)
    # errors are finite and positive under truncation at the smallest mantissa
    assert by_cutoff[0][smallest]["l1_dens"] > 0
    # truncated fraction shrinks as the cutoff coarsens
    fracs = [by_cutoff[c][widest]["truncated_fraction"] for c in CUTOFFS]
    assert all(fracs[i] >= fracs[i + 1] for i in range(len(fracs) - 1))
    # the error at wide mantissa is no worse than at the narrowest mantissa
    assert by_cutoff[0][widest]["l1_dens"] <= by_cutoff[0][smallest]["l1_dens"]
    # cutoff M-1 does not increase the small-mantissa error by more than noise
    assert by_cutoff[1][smallest]["l1_dens"] <= by_cutoff[0][smallest]["l1_dens"] * 1.5
