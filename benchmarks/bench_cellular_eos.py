"""Hypothesis 2 / Section 6.1: Cellular — EOS-module truncation.

Truncates only the tabulated-EOS module of the Cellular detonation and
records whether the Newton–Raphson inversion still converges, as a function
of mantissa width.

Expected shape (paper): the inversion stops converging below a mantissa
threshold in the tens of bits (the paper reports ~42 with Flash-X's
tolerance; the synthetic table's threshold sits somewhat lower), and
relaxing the tolerance / raising the iteration count does not rescue very
low precisions — falsifying the intuition that a table-based EOS tolerates
reduced precision.
"""
from __future__ import annotations

import pytest

from repro.core import RaptorRuntime
from repro.eos import NewtonSolverConfig
from repro.workloads import CellularConfig, CellularWorkload

from conftest import FULL_SWEEP, print_table, save_results

MANTISSAS = tuple(range(8, 53, 4)) if FULL_SWEEP else (8, 16, 24, 32, 40, 48, 52)


def run_experiment():
    workload = CellularWorkload(CellularConfig(n_cells=48, n_steps=10))
    records = []

    reference = workload.run()
    records.append(
        {
            "man_bits": 52,
            "policy": "none",
            "converged": bool(reference.info["eos_converged"]),
            "failed_steps": int(reference.info["failed_newton_steps"]),
            "burned_fraction": reference.info["final_burned_fraction"],
            "front_advance": reference.info["front_advance"],
        }
    )

    for man_bits in MANTISSAS:
        rt = RaptorRuntime(f"cellular-eos-{man_bits}")
        policy = workload.eos_policy(man_bits, runtime=rt)
        result = workload.run(policy=policy, runtime=rt)
        records.append(
            {
                "man_bits": man_bits,
                "policy": "eos-truncated",
                "converged": bool(result.info["eos_converged"]),
                "failed_steps": int(result.info["failed_newton_steps"]),
                "burned_fraction": result.info["final_burned_fraction"],
                "front_advance": result.info["front_advance"],
            }
        )

    # relaxed-tolerance attempt at very low precision (the paper's rescue attempt)
    relaxed = CellularWorkload(
        CellularConfig(n_cells=48, n_steps=10, newton=NewtonSolverConfig(tolerance=1e-7, max_iterations=120))
    )
    rt = RaptorRuntime("cellular-eos-relaxed")
    result = relaxed.run(policy=relaxed.eos_policy(10, runtime=rt), runtime=rt)
    records.append(
        {
            "man_bits": 10,
            "policy": "eos-truncated-relaxed-tolerance",
            "converged": bool(result.info["eos_converged"]),
            "failed_steps": int(result.info["failed_newton_steps"]),
            "burned_fraction": result.info["final_burned_fraction"],
            "front_advance": result.info["front_advance"],
        }
    )
    return records


@pytest.mark.benchmark(group="cellular")
def test_cellular_eos_truncation_convergence(benchmark):
    records = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [r["policy"], r["man_bits"], "yes" if r["converged"] else "NO",
         r["failed_steps"], f"{r['burned_fraction']:.3f}", f"{r['front_advance']:.1f}"]
        for r in records
    ]
    print_table(
        "Cellular — Newton-Raphson convergence of the truncated EOS module",
        ["policy", "mantissa", "converged", "failed steps", "burned frac", "front advance (cm)"],
        rows,
    )
    save_results("cellular_eos", records)

    truncated = {r["man_bits"]: r for r in records if r["policy"] == "eos-truncated"}
    reference = next(r for r in records if r["policy"] == "none")
    relaxed = next(r for r in records if r["policy"] == "eos-truncated-relaxed-tolerance")

    # the reference and the widest truncated run converge
    assert reference["converged"]
    assert truncated[max(MANTISSAS)]["converged"]
    # narrow mantissas fail (Hypothesis 2 falsified)
    assert not truncated[min(MANTISSAS)]["converged"]
    # convergence is monotone in the mantissa width
    outcomes = [truncated[m]["converged"] for m in sorted(truncated)]
    first_success = outcomes.index(True)
    assert all(outcomes[first_success:]) and not any(outcomes[:first_success])
    # relaxing the tolerance does not rescue 10-bit mantissas
    assert not relaxed["converged"]
    # the detonation itself still propagates in the reference
    assert reference["front_advance"] > 0
