"""Figure 8: estimated speedup of Sod under the hardware co-design model.

Runs the Sod workload with the hydro module truncated for cutoffs M−0 … M−2
across a mantissa sweep (operation and memory counting enabled), then feeds
the counters into the Section 7.2 model to obtain compute-bound and
memory-bound speedup estimates.

Expected shape (paper): full truncation to half precision gives roughly
3–4x (compute-bound) and ~2x (memory-bound); speedups shrink for coarser
cutoffs because a smaller share of the operations is truncated; the roofline
classifies the workload as compute-bound.
"""
from __future__ import annotations

import pytest

from repro.codesign import estimate_speedup
from repro.core import AMRCutoffPolicy, FPFormat, RaptorRuntime, TruncationConfig
from repro.workloads import SodConfig, SodWorkload

from conftest import FULL_SWEEP, print_table, save_results

MANTISSAS = tuple(range(4, 53, 6)) if FULL_SWEEP else (4, 10, 23, 36, 52)
CUTOFFS = (0, 1, 2)


def _workload() -> SodWorkload:
    return SodWorkload(
        SodConfig(
            nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=3,
            t_end=0.02, rk_stages=1, reconstruction="plm",
        )
    )


def run_experiment():
    workload = _workload()
    records = []
    for cutoff in CUTOFFS:
        for man_bits in MANTISSAS:
            runtime = RaptorRuntime(f"fig8-M{cutoff}-{man_bits}")
            policy = AMRCutoffPolicy(
                TruncationConfig.mantissa(man_bits, exp_bits=11),
                cutoff=cutoff,
                modules=["hydro"],
                runtime=runtime,
            )
            workload.run(policy=policy, runtime=runtime)
            fmt = FPFormat(5, man_bits) if man_bits <= 10 else FPFormat(11, man_bits)
            estimate = estimate_speedup(runtime, fmt)
            records.append(
                {
                    "cutoff": f"M-{cutoff}",
                    "man_bits": man_bits,
                    "truncated_fraction": runtime.ops.truncated_fraction,
                    "compute_bound_speedup": estimate.compute_bound,
                    "memory_bound_speedup": estimate.memory_bound,
                    "bound": estimate.bound,
                }
            )
    return records


@pytest.mark.benchmark(group="figure8")
def test_fig8_sod_speedup_estimates(benchmark):
    records = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [r["cutoff"], r["man_bits"], f"{r['truncated_fraction']:.1%}",
         f"{r['compute_bound_speedup']:.2f}x", f"{r['memory_bound_speedup']:.2f}x", r["bound"]]
        for r in records
    ]
    print_table(
        "Figure 8 — Sod: estimated speedups (compute-bound / memory-bound)",
        ["cutoff", "mantissa", "trunc ops", "compute-bound", "memory-bound", "roofline"],
        rows,
    )
    save_results("fig8_speedup", records)

    by_key = {(r["cutoff"], r["man_bits"]): r for r in records}
    smallest = min(MANTISSAS)
    m0_small = by_key[("M-0", smallest)]
    m0_wide = by_key[("M-0", max(MANTISSAS))]

    # the roofline produces a definite classification (the paper's testbed
    # model calls Sod compute-bound; with this reproduction's per-operand
    # traffic counting the operational intensity is much lower, so the
    # classification may come out memory-bound — see EXPERIMENTS.md)
    assert m0_small["bound"] in ("compute", "memory")
    # full truncation to a narrow format: a several-fold estimated speedup
    assert 1.5 < m0_small["compute_bound_speedup"] < 12.0
    assert 1.2 < m0_small["memory_bound_speedup"] < 8.0
    # speedup shrinks as the mantissa widens (FP64-wide target -> ~1x)
    assert m0_wide["compute_bound_speedup"] < m0_small["compute_bound_speedup"]
    assert m0_wide["compute_bound_speedup"] == pytest.approx(1.0, abs=0.35)
    # coarser cutoffs truncate less and therefore speed up less
    assert (
        by_key[("M-2", smallest)]["compute_bound_speedup"]
        <= by_key[("M-1", smallest)]["compute_bound_speedup"] + 1e-9
        <= by_key[("M-0", smallest)]["compute_bound_speedup"] + 1e-9
    )
