"""Kernel-plane benchmark: instrumented vs fused fast plane, per workload.

Times the full-precision *reference* run of each workload on both kernel
planes (see ``repro.kernels``), breaks the fast plane down into its three
optimisation rungs —

* ``fast-flux``    — fused flux pipeline only (``RAPTOR_FAST_NO_SCRATCH`` +
  ``RAPTOR_FAST_NO_BATCH``): every Riemann/EOS/reconstruction sweep is
  straight-line numpy, but temporaries are freshly allocated and blocks
  advance one at a time;
* ``fast-scratch`` — plus preallocated scratch workspaces (``out=``
  chaining, no batching);
* ``fast-nogrid``  — plus batched block stepping but with the fused grid
  plane disabled (``RAPTOR_FAST_NO_GRID``): per-block guard fills,
  per-block ``compute_dt`` and per-block refinement estimators;
* ``fast``         — plus the fused grid plane (the default fast plane) —

verifies the final states are bitwise identical across *all* planes — the
fast plane's contract — and records the comparison to
``benchmarks/results/BENCH_kernels.json`` so the perf trajectory is tracked
PR-over-PR (the previously recorded fast-plane seconds are carried along as
``previous_fast_seconds``).

A second pass times *truncated* (e8m10, non-counting) runs of the
compressible workloads on the instrumented plane vs the fused truncating
plane (``repro.kernels.trunc``, reached via ``plane="auto"``) — the sweep
engine's actual point hot path when ``count_point_ops=False`` — again
insisting the states agree bitwise, and records the truncated speedup the
same way.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py            # full set
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick    # CI sanity

``--quick`` shrinks the configurations and repeats, prints the same table,
and still enforces bitwise identity (but not the speedup floor, which is
only meaningful at the full sizes).

For the AMR workloads a third pass records a phase-level breakdown of one
fast-plane run — wall-clock attributed to guard-cell fills, ``compute_dt``,
regridding and the flux sweeps — so the grid-plane wins stay visible
PR-over-PR next to the end-to-end numbers.

The bubble workload (incompressible multiphase) gets its own section: its
reference run is timed op-by-op (``plane="instrumented"`` with
``RAPTOR_FAST_NO_BUBBLE=1``), on the fast plane with the fused bubble
kernels disabled (``fast-nobubble``), and on the full fast plane; a
truncated (e8m10) pass compares the op-by-op ``TruncatedContext`` path
against the fused truncating bubble twins.  Note the bubble baseline must
be requested through an explicit policy — ``Scenario.reference`` maps the
bubble's full-precision contexts back to the solver's fast path — which is
why the bubble rows don't reuse ``_time_reference``.  A phase breakdown
(advection, diffusion, Poisson solve, level-set reinitialisation) rides
along like the AMR one.
"""
from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_kernels.json"

#: per-workload reference configurations (sweep-scale grids, the engine's
#: actual hot path); the quick variant trims steps, not structure
CONFIGS = {
    "sod": dict(
        full=dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=3,
                  t_end=0.04, rk_stages=1, reconstruction="plm"),
        quick=dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2,
                   t_end=0.01, rk_stages=1, reconstruction="plm"),
    ),
    "sedov": dict(
        full=dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=3,
                  t_end=0.02, rk_stages=1, reconstruction="weno5"),
        quick=dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2,
                   t_end=0.005, rk_stages=1, reconstruction="weno5"),
    ),
    "kelvin-helmholtz": dict(
        full=dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2,
                  t_end=0.02, rk_stages=1),
        quick=dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2,
                   t_end=0.004, rk_stages=1),
    ),
    "cellular": dict(
        full=dict(n_cells=64, n_steps=24),
        quick=dict(n_cells=16, n_steps=4),
    ),
}

#: timing variants: label -> (plane, env overrides)
VARIANTS = (
    ("instrumented", "instrumented", {}),
    ("fast-flux", "fast", {"RAPTOR_FAST_NO_SCRATCH": "1", "RAPTOR_FAST_NO_BATCH": "1"}),
    ("fast-scratch", "fast", {"RAPTOR_FAST_NO_BATCH": "1"}),
    ("fast-nogrid", "fast", {"RAPTOR_FAST_NO_GRID": "1"}),
    ("fast", "fast", {}),
)

#: workloads whose hydro hot path has fused truncating twins
TRUNC_WORKLOADS = ("sod", "sedov", "kelvin-helmholtz")

#: bubble workload configurations (the Figure 1 protocol at sweep scale)
BUBBLE_CONFIGS = dict(
    full=dict(spin_up_time=0.2, truncation_time=0.3,
              snapshot_times=(0.1, 0.2, 0.3), fixed_dt=0.004),
    quick=dict(spin_up_time=0.04, truncation_time=0.04,
               snapshot_times=(0.04,), fixed_dt=0.004),
)

#: bubble timing variants: label -> (plane, env overrides)
BUBBLE_VARIANTS = (
    ("instrumented", "instrumented", {"RAPTOR_FAST_NO_BUBBLE": "1"}),
    ("fast-nobubble", "fast", {"RAPTOR_FAST_NO_BUBBLE": "1"}),
    ("fast", "fast", {}),
)


@contextlib.contextmanager
def _env(overrides):
    saved = {name: os.environ.get(name) for name in
             ("RAPTOR_FAST_NO_SCRATCH", "RAPTOR_FAST_NO_BATCH",
              "RAPTOR_FAST_NO_GRID", "RAPTOR_FAST_NO_BUBBLE")}
    for name in saved:
        os.environ.pop(name, None)
    os.environ.update(overrides)
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _time_reference(workload_factory, plane: str, env_overrides, repeat: int):
    """Best-of-``repeat`` wall-clock of a reference run on ``plane``."""
    best = np.inf
    outcome = None
    with _env(env_overrides):
        for _ in range(repeat):
            workload = workload_factory()
            start = time.perf_counter()
            outcome = workload.reference(plane=plane)
            best = min(best, time.perf_counter() - start)
    return best, outcome


def _time_truncated(workload_factory, plane: str, repeat: int):
    """Best-of-``repeat`` wall-clock of a non-counting e8m10 truncated run.

    ``plane="instrumented"`` runs the optimized op-by-op ``TruncatedContext``
    path; ``plane="auto"`` routes the (non-counting) contexts onto the fused
    truncating plane.
    """
    from repro.core import FPFormat, GlobalPolicy, RaptorRuntime, TruncationConfig

    fmt = FPFormat(exp_bits=8, man_bits=10)
    best = np.inf
    outcome = None
    for _ in range(repeat):
        workload = workload_factory()
        runtime = RaptorRuntime()
        policy = GlobalPolicy(
            TruncationConfig(targets={64: fmt}, count_ops=False, track_memory=False),
            runtime=runtime, plane=plane,
        )
        start = time.perf_counter()
        outcome = workload.run(policy=policy, runtime=runtime)
        best = min(best, time.perf_counter() - start)
    return best, outcome


def _phase_breakdown(workload_factory):
    """Wall-clock per phase of one fast-plane reference run of an AMR workload.

    Wraps the grid-side entry points at class level for the duration of the
    run.  Guard-fill time nested inside the flux substep (or a regrid) is
    attributed to ``guard_fill`` and subtracted from the enclosing phase, so
    the four numbers are exclusive and roughly sum to the stepped time.
    """
    from repro.amr.grid import AMRGrid
    from repro.hydro.solver import HydroSolver

    acc = {"guard_fill": 0.0, "compute_dt": 0.0, "regrid": 0.0, "flux": 0.0}
    originals = {
        "fill": AMRGrid.fill_guard_cells,
        "dt": HydroSolver.compute_dt,
        "regrid": AMRGrid.regrid,
        "substep": HydroSolver._substep,
    }

    def timed(key, fn):
        def wrapper(*args, **kwargs):
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                acc[key] += time.perf_counter() - start
        return wrapper

    def exclusive(key, fn):
        def wrapper(*args, **kwargs):
            nested = acc["guard_fill"]
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                elapsed = time.perf_counter() - start
                acc[key] += elapsed - (acc["guard_fill"] - nested)
        return wrapper

    AMRGrid.fill_guard_cells = timed("guard_fill", originals["fill"])
    HydroSolver.compute_dt = timed("compute_dt", originals["dt"])
    AMRGrid.regrid = exclusive("regrid", originals["regrid"])
    HydroSolver._substep = exclusive("flux", originals["substep"])
    try:
        with _env({}):
            workload_factory().reference(plane="fast")
    finally:
        AMRGrid.fill_guard_cells = originals["fill"]
        HydroSolver.compute_dt = originals["dt"]
        AMRGrid.regrid = originals["regrid"]
        HydroSolver._substep = originals["substep"]
    return {key: round(value, 6) for key, value in acc.items()}


def _time_bubble(workload_factory, plane: str, env_overrides, repeat: int,
                 truncated: bool = False):
    """Best-of-``repeat`` wall-clock of a bubble run on ``plane``.

    The full-precision baseline needs an explicit
    ``NoTruncationPolicy(plane="instrumented")`` — ``Scenario.reference``
    maps full-precision contexts back to the solver's fast path, so
    ``reference(plane="instrumented")`` would *not* time the op-by-op
    bubble operators.  ``truncated=True`` times the non-counting e8m10 run
    instead (op-by-op ``TruncatedContext`` on the instrumented plane, the
    fused truncating twins on ``"auto"``/``"fast"``).
    """
    from repro.core import (FPFormat, GlobalPolicy, NoTruncationPolicy,
                            RaptorRuntime, TruncationConfig)

    best = np.inf
    outcome = None
    with _env(env_overrides):
        for _ in range(repeat):
            workload = workload_factory()
            runtime = RaptorRuntime()
            if truncated:
                fmt = FPFormat(exp_bits=8, man_bits=10)
                policy = GlobalPolicy(
                    TruncationConfig(targets={64: fmt}, count_ops=False,
                                     track_memory=False),
                    runtime=runtime, plane=plane,
                )
            else:
                policy = NoTruncationPolicy(
                    runtime=runtime, count_ops=False, track_memory=False,
                    plane=plane,
                )
            start = time.perf_counter()
            outcome = workload.run(policy=policy, runtime=runtime)
            best = min(best, time.perf_counter() - start)
    return best, outcome


def _bubble_phase_breakdown(workload_factory):
    """Wall-clock per phase of one fast-plane bubble run.

    Wraps the solver's operator entry points at class level: advection and
    diffusion terms (the paper's truncation targets), the pressure Poisson
    solve, and the level-set reinitialisation.  The phases don't nest, so
    plain inclusive timers are exclusive already.
    """
    from repro.incomp.levelset import LevelSet
    from repro.incomp.poisson import PoissonSolver
    from repro.incomp.solver import BubbleSolver

    acc = {"advection": 0.0, "diffusion": 0.0, "poisson": 0.0, "reinit": 0.0}
    originals = {
        "advection": BubbleSolver.advection_term,
        "diffusion": BubbleSolver.diffusion_term,
        "poisson": PoissonSolver.solve,
        "reinit": LevelSet.reinitialize,
    }

    def timed(key, fn):
        def wrapper(*args, **kwargs):
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                acc[key] += time.perf_counter() - start
        return wrapper

    BubbleSolver.advection_term = timed("advection", originals["advection"])
    BubbleSolver.diffusion_term = timed("diffusion", originals["diffusion"])
    PoissonSolver.solve = timed("poisson", originals["poisson"])
    LevelSet.reinitialize = timed("reinit", originals["reinit"])
    try:
        with _env({}):
            from repro.core import NoTruncationPolicy, RaptorRuntime

            runtime = RaptorRuntime()
            workload_factory().run(
                policy=NoTruncationPolicy(runtime=runtime, count_ops=False,
                                          track_memory=False, plane="fast"),
                runtime=runtime,
            )
    finally:
        BubbleSolver.advection_term = originals["advection"]
        BubbleSolver.diffusion_term = originals["diffusion"]
        PoissonSolver.solve = originals["poisson"]
        LevelSet.reinitialize = originals["reinit"]
    return {key: round(value, 6) for key, value in acc.items()}


def _bubble_record(quick: bool, repeat: int, previous):
    """Benchmark the bubble workload across the bubble-plane rungs."""
    from repro.workloads import create_workload

    flavour = "quick" if quick else "full"
    config = BUBBLE_CONFIGS[flavour]
    factory = lambda: create_workload("bubble", **config)

    seconds = {}
    baseline = None
    for label, plane, env_overrides in BUBBLE_VARIANTS:
        secs, outcome = _time_bubble(factory, plane, env_overrides, repeat)
        seconds[label] = secs
        if baseline is None:
            baseline = outcome
            continue
        for key in baseline.state:
            if not np.array_equal(baseline.state[key], outcome.state[key]):
                raise SystemExit(
                    f"PLANE MISMATCH: bubble variable {key!r} differs between "
                    f"the instrumented plane and {label!r} — the fused bubble "
                    "plane's bit-identity contract is broken"
                )

    slow_secs, slow_out = _time_bubble(
        factory, "instrumented", {"RAPTOR_FAST_NO_BUBBLE": "1"}, repeat,
        truncated=True,
    )
    fast_secs, fast_out = _time_bubble(factory, "auto", {}, repeat,
                                       truncated=True)
    for key in slow_out.state:
        if not np.array_equal(slow_out.state[key], fast_out.state[key]):
            raise SystemExit(
                f"PLANE MISMATCH: truncated bubble variable {key!r} differs "
                "between the instrumented plane and the fused truncating "
                "bubble plane — the truncating plane's bit-identity contract "
                "is broken"
            )

    return {
        "workload": "bubble",
        "config": config,
        "repeat": repeat,
        "instrumented_seconds": seconds["instrumented"],
        "fast_nobubble_seconds": seconds["fast-nobubble"],
        "fast_seconds": seconds["fast"],
        "previous_fast_seconds": previous.get("bubble"),
        "speedup": seconds["instrumented"] / seconds["fast"]
        if seconds["fast"] > 0 else float("inf"),
        "bubble_speedup": seconds["fast-nobubble"] / seconds["fast"]
        if seconds["fast"] > 0 else float("inf"),
        "bitwise_identical": True,
        "bubble_phases": _bubble_phase_breakdown(factory),
        "trunc_instrumented_seconds": slow_secs,
        "trunc_fast_seconds": fast_secs,
        "trunc_speedup": slow_secs / fast_secs if fast_secs > 0 else float("inf"),
    }


def _previous_fast_seconds():
    """The fast-plane seconds of the committed record (PR-over-PR trail)."""
    try:
        with open(RESULTS_PATH, encoding="utf-8") as fh:
            payload = json.load(fh)
        return {r["workload"]: r.get("fast_seconds") for r in payload.get("workloads", [])}
    except (OSError, ValueError, KeyError):
        return {}


def run_benchmark(quick: bool, repeat: int):
    from repro.workloads import create_workload

    flavour = "quick" if quick else "full"
    previous = _previous_fast_seconds()
    records = []
    for name, variants in CONFIGS.items():
        config = variants[flavour]
        factory = lambda: create_workload(name, **config)

        seconds = {}
        baseline = None
        for label, plane, env_overrides in VARIANTS:
            secs, outcome = _time_reference(factory, plane, env_overrides, repeat)
            seconds[label] = secs
            if baseline is None:
                baseline = outcome
                continue
            for key in baseline.state:
                if not np.array_equal(baseline.state[key], outcome.state[key]):
                    raise SystemExit(
                        f"PLANE MISMATCH: {name} variable {key!r} differs between "
                        f"the instrumented plane and {label!r} — the fast plane's "
                        "bit-identity contract is broken"
                    )

        record = {
            "workload": name,
            "config": config,
            "repeat": repeat,
            "instrumented_seconds": seconds["instrumented"],
            "fast_flux_seconds": seconds["fast-flux"],
            "fast_scratch_seconds": seconds["fast-scratch"],
            "fast_nogrid_seconds": seconds["fast-nogrid"],
            "fast_seconds": seconds["fast"],
            "previous_fast_seconds": previous.get(name),
            "speedup": seconds["instrumented"] / seconds["fast"]
            if seconds["fast"] > 0 else float("inf"),
            "grid_speedup": seconds["fast-nogrid"] / seconds["fast"]
            if seconds["fast"] > 0 else float("inf"),
            "bitwise_identical": True,
        }

        if name != "cellular":
            record["phases"] = _phase_breakdown(factory)

        if name in TRUNC_WORKLOADS:
            slow_secs, slow_out = _time_truncated(factory, "instrumented", repeat)
            fast_secs, fast_out = _time_truncated(factory, "auto", repeat)
            for key in slow_out.state:
                if not np.array_equal(slow_out.state[key], fast_out.state[key]):
                    raise SystemExit(
                        f"PLANE MISMATCH: truncated {name} variable {key!r} differs "
                        "between the instrumented plane and the fused truncating "
                        "plane — the truncating plane's bit-identity contract is "
                        "broken"
                    )
            record.update({
                "trunc_instrumented_seconds": slow_secs,
                "trunc_fast_seconds": fast_secs,
                "trunc_speedup": slow_secs / fast_secs if fast_secs > 0 else float("inf"),
            })

        records.append(record)

    records.append(_bubble_record(quick, repeat, previous))
    return {"mode": flavour, "workloads": records}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI sanity mode: tiny configs, one repeat, no JSON record")
    parser.add_argument("--repeat", type=int, default=None,
                        help="timing repeats per (workload, plane); best-of wins")
    parser.add_argument("--out", default=None,
                        help=f"result path (default {RESULTS_PATH})")
    args = parser.parse_args(argv)

    repeat = args.repeat if args.repeat is not None else (1 if args.quick else 3)
    payload = run_benchmark(args.quick, repeat)

    from repro.core import format_table

    rows = [
        [
            r["workload"],
            f"{r['instrumented_seconds']:.3f}",
            f"{r['fast_flux_seconds']:.3f}",
            f"{r['fast_scratch_seconds']:.3f}",
            f"{r['fast_nogrid_seconds']:.3f}",
            f"{r['fast_seconds']:.3f}",
            f"{r['speedup']:.2f}x",
            f"{r['grid_speedup']:.2f}x",
            "yes",
        ]
        for r in payload["workloads"]
        if "fast_flux_seconds" in r
    ]
    print(f"\n=== kernel planes: reference runs, {payload['mode']} mode ===")
    print(format_table(
        ["workload", "instrumented [s]", "fast-flux [s]", "fast-scratch [s]",
         "fast-nogrid [s]", "fast [s]", "speedup", "grid speedup",
         "bitwise identical"],
        rows,
    ))

    bubble_rows = [
        [
            r["workload"],
            f"{r['instrumented_seconds']:.3f}",
            f"{r['fast_nobubble_seconds']:.3f}",
            f"{r['fast_seconds']:.3f}",
            f"{r['speedup']:.2f}x",
            f"{r['bubble_speedup']:.2f}x",
            "yes",
        ]
        for r in payload["workloads"]
        if "fast_nobubble_seconds" in r
    ]
    print(f"\n=== bubble plane: reference runs, {payload['mode']} mode ===")
    print(format_table(
        ["workload", "instrumented [s]", "fast-nobubble [s]", "fast [s]",
         "speedup", "bubble speedup", "bitwise identical"],
        bubble_rows,
    ))

    bubble_phase_rows = [
        [
            r["workload"],
            f"{r['bubble_phases']['advection']:.3f}",
            f"{r['bubble_phases']['diffusion']:.3f}",
            f"{r['bubble_phases']['poisson']:.3f}",
            f"{r['bubble_phases']['reinit']:.3f}",
        ]
        for r in payload["workloads"]
        if "bubble_phases" in r
    ]
    print(f"\n=== fast bubble plane: phase breakdown, {payload['mode']} mode ===")
    print(format_table(
        ["workload", "advection [s]", "diffusion [s]", "poisson [s]",
         "reinit [s]"],
        bubble_phase_rows,
    ))

    phase_rows = [
        [
            r["workload"],
            f"{r['phases']['guard_fill']:.3f}",
            f"{r['phases']['compute_dt']:.3f}",
            f"{r['phases']['regrid']:.3f}",
            f"{r['phases']['flux']:.3f}",
        ]
        for r in payload["workloads"]
        if "phases" in r
    ]
    print(f"\n=== fast plane: phase breakdown, {payload['mode']} mode ===")
    print(format_table(
        ["workload", "guard-fill [s]", "compute_dt [s]", "regrid [s]",
         "flux [s]"],
        phase_rows,
    ))

    trunc_rows = [
        [
            r["workload"],
            f"{r['trunc_instrumented_seconds']:.3f}",
            f"{r['trunc_fast_seconds']:.3f}",
            f"{r['trunc_speedup']:.2f}x",
            "yes",
        ]
        for r in payload["workloads"]
        if "trunc_speedup" in r
    ]
    print(f"\n=== kernel planes: truncated (e8m10) runs, {payload['mode']} mode ===")
    print(format_table(
        ["workload", "instrumented [s]", "trunc-fast [s]", "speedup",
         "bitwise identical"],
        trunc_rows,
    ))

    if args.quick and args.out is None:
        # sanity mode: identity + a plausible timing was enough, don't
        # overwrite the tracked record with throwaway numbers
        return 0

    out = Path(args.out) if args.out is not None else RESULTS_PATH
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {out}")

    fast_enough = [r for r in payload["workloads"]
                   if "fast_flux_seconds" in r and r["speedup"] >= 6.0]
    if payload["mode"] == "full" and len(fast_enough) < 2:
        print(
            "WARNING: fewer than two workloads reached the 6x reference "
            "speedup the fused flux pipeline targets", file=sys.stderr,
        )
        return 1
    grid_fast = [r for r in payload["workloads"]
                 if "phases" in r and r["grid_speedup"] >= 1.5]
    if payload["mode"] == "full" and not grid_fast:
        print(
            "WARNING: no AMR workload reached the 1.5x additional speedup "
            "the fused grid plane targets over fast-nogrid", file=sys.stderr,
        )
        return 1
    # the bubble's op-by-op baseline is cheaper per op than the hydro one
    # (no counting contexts in the reference), so its floors sit lower
    trunc_slow = [r for r in payload["workloads"]
                  if "trunc_speedup" in r
                  and r["trunc_speedup"] < (2.5 if r["workload"] == "bubble" else 3.0)]
    if payload["mode"] == "full" and trunc_slow:
        print(
            "WARNING: truncated runs below the speedup floor of the fused "
            "truncating plane: "
            + ", ".join(f"{r['workload']} ({r['trunc_speedup']:.2f}x)" for r in trunc_slow),
            file=sys.stderr,
        )
        return 1
    bubble_slow = [r for r in payload["workloads"]
                   if "bubble_speedup" in r and r["speedup"] < 1.5]
    if payload["mode"] == "full" and bubble_slow:
        print(
            "WARNING: the fused bubble plane fell below the 1.5x reference "
            "speedup it targets over the instrumented baseline",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
