"""Kernel-plane benchmark: instrumented vs fused fast plane, per workload.

Times the full-precision *reference* run of each workload on both kernel
planes (see ``repro.kernels``), verifies the final states are bitwise
identical — the fast plane's contract — and records the comparison to
``benchmarks/results/BENCH_kernels.json`` so the perf trajectory is tracked
PR-over-PR.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py            # full set
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick    # CI sanity

``--quick`` shrinks the configurations and repeats, prints the same table,
and still enforces bitwise identity (but not the speedup floor, which is
only meaningful at the full sizes).
"""
from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_kernels.json"

#: per-workload reference configurations (sweep-scale grids, the engine's
#: actual hot path); the quick variant trims steps, not structure
CONFIGS = {
    "sod": dict(
        full=dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=3,
                  t_end=0.04, rk_stages=1, reconstruction="plm"),
        quick=dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2,
                   t_end=0.01, rk_stages=1, reconstruction="plm"),
    ),
    "sedov": dict(
        full=dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=3,
                  t_end=0.02, rk_stages=1, reconstruction="weno5"),
        quick=dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2,
                   t_end=0.005, rk_stages=1, reconstruction="weno5"),
    ),
    "kelvin-helmholtz": dict(
        full=dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2,
                  t_end=0.02, rk_stages=1),
        quick=dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2,
                   t_end=0.004, rk_stages=1),
    ),
    "cellular": dict(
        full=dict(n_cells=64, n_steps=24),
        quick=dict(n_cells=16, n_steps=4),
    ),
}


def _time_reference(workload_factory, plane: str, repeat: int):
    """Best-of-``repeat`` wall-clock of a reference run on ``plane``."""
    best = np.inf
    outcome = None
    for _ in range(repeat):
        workload = workload_factory()
        start = time.perf_counter()
        outcome = workload.reference(plane=plane)
        best = min(best, time.perf_counter() - start)
    return best, outcome


def run_benchmark(quick: bool, repeat: int):
    from repro.workloads import create_workload

    flavour = "quick" if quick else "full"
    records = []
    for name, variants in CONFIGS.items():
        config = variants[flavour]
        factory = lambda: create_workload(name, **config)
        instrumented_s, instrumented = _time_reference(factory, "instrumented", repeat)
        fast_s, fast = _time_reference(factory, "fast", repeat)

        for key in instrumented.state:
            if not np.array_equal(instrumented.state[key], fast.state[key]):
                raise SystemExit(
                    f"PLANE MISMATCH: {name} variable {key!r} differs between "
                    "the instrumented and the fast plane — the fast plane's "
                    "bit-identity contract is broken"
                )

        records.append({
            "workload": name,
            "config": config,
            "repeat": repeat,
            "instrumented_seconds": instrumented_s,
            "fast_seconds": fast_s,
            "speedup": instrumented_s / fast_s if fast_s > 0 else float("inf"),
            "bitwise_identical": True,
        })
    return {"mode": flavour, "workloads": records}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI sanity mode: tiny configs, one repeat, no JSON record")
    parser.add_argument("--repeat", type=int, default=None,
                        help="timing repeats per (workload, plane); best-of wins")
    parser.add_argument("--out", default=None,
                        help=f"result path (default {RESULTS_PATH})")
    args = parser.parse_args(argv)

    repeat = args.repeat if args.repeat is not None else (1 if args.quick else 3)
    payload = run_benchmark(args.quick, repeat)

    from repro.core import format_table

    rows = [
        [
            r["workload"],
            f"{r['instrumented_seconds']:.3f}",
            f"{r['fast_seconds']:.3f}",
            f"{r['speedup']:.2f}x",
            "yes",
        ]
        for r in payload["workloads"]
    ]
    print(f"\n=== kernel planes: reference runs, {payload['mode']} mode ===")
    print(format_table(
        ["workload", "instrumented [s]", "fast [s]", "speedup", "bitwise identical"], rows
    ))

    if args.quick and args.out is None:
        # sanity mode: identity + a plausible timing was enough, don't
        # overwrite the tracked record with throwaway numbers
        return 0

    out = Path(args.out) if args.out is not None else RESULTS_PATH
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {out}")

    fast_enough = [r for r in payload["workloads"] if r["speedup"] >= 3.0]
    if payload["mode"] == "full" and len(fast_enough) < 2:
        print(
            "WARNING: fewer than two workloads reached the 3x reference "
            "speedup the kernel plane targets", file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
