"""Figure 7a: Sedov — L1 density error and FP-op counts vs mantissa width.

For every refinement cutoff (M−0 … M−3) the hydro module is truncated to a
sweep of mantissa widths; the L1 error of the density field against the
full-precision reference (sfocu) and the truncated / full operation counts
are reported, reproducing the panels of Figure 7a.

Expected shape (paper): excluding the finest AMR level (M−1) drops the error
by many orders of magnitude for small mantissas, and the truncated share of
the operations shrinks as the cutoff is coarsened.
"""
from __future__ import annotations

import pytest

from repro.core import AMRCutoffPolicy, RaptorRuntime, TruncationConfig
from repro.workloads import SedovConfig, SedovWorkload

from conftest import MANTISSA_POINTS, print_table, save_results

CUTOFFS = (0, 1, 2, 3)


def _workload() -> SedovWorkload:
    return SedovWorkload(
        SedovConfig(
            nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=3,
            t_end=0.02, rk_stages=1, reconstruction="plm",
        )
    )


def run_experiment():
    workload = _workload()
    reference = workload.reference()
    rows = []
    series = {}
    for cutoff in CUTOFFS:
        series[cutoff] = []
        for man_bits in MANTISSA_POINTS:
            runtime = RaptorRuntime(f"sedov-m{cutoff}-{man_bits}")
            policy = AMRCutoffPolicy(
                TruncationConfig.mantissa(man_bits, exp_bits=11),
                cutoff=cutoff,
                modules=["hydro"],
                runtime=runtime,
            )
            run = workload.run(policy=policy, runtime=runtime)
            error = run.l1_error(reference, "dens")
            gflops_trunc, gflops_full = run.giga_flops()
            record = {
                "cutoff": f"M-{cutoff}",
                "man_bits": man_bits,
                "l1_dens": error,
                "truncated_fraction": run.truncated_fraction,
                "giga_ops_truncated": gflops_trunc,
                "giga_ops_full": gflops_full,
                "n_leaves": run.info["n_leaves"],
            }
            series[cutoff].append(record)
            rows.append(
                [f"M-{cutoff}", man_bits, f"{error:.3e}", f"{run.truncated_fraction:.1%}",
                 f"{gflops_trunc:.4f}", f"{gflops_full:.4f}"]
            )
    return rows, series


@pytest.mark.benchmark(group="figure7a")
def test_fig7a_sedov_error_vs_mantissa(benchmark):
    rows, series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "Figure 7a — Sedov: L1 density error vs mantissa bits per AMR cutoff",
        ["cutoff", "mantissa", "L1(dens)", "trunc ops", "Gops trunc", "Gops full"],
        rows,
    )
    save_results("fig7a_sedov", series)

    # shape assertions mirroring the paper's observations
    by_cutoff = {c: {r["man_bits"]: r for r in recs} for c, recs in series.items()}
    smallest = min(MANTISSA_POINTS)
    # 1. at the smallest mantissa, excluding the finest level reduces the error
    assert by_cutoff[1][smallest]["l1_dens"] < by_cutoff[0][smallest]["l1_dens"]
    # 2. the truncated fraction shrinks monotonically as the cutoff coarsens
    widest = max(MANTISSA_POINTS)
    fracs = [by_cutoff[c][widest]["truncated_fraction"] for c in CUTOFFS]
    assert all(fracs[i] >= fracs[i + 1] for i in range(len(fracs) - 1))
    # 3. full truncation error decreases (weakly) with more mantissa bits
    errs = [by_cutoff[0][m]["l1_dens"] for m in MANTISSA_POINTS]
    assert errs[-1] <= errs[0]
