"""Figure 7a: Sedov — L1 density error and FP-op counts vs mantissa width.

For every refinement cutoff (M−0 … M−3) the hydro module is truncated to a
sweep of mantissa widths; the L1 error of the density field against the
full-precision reference (sfocu) and the truncated / full operation counts
are reported, reproducing the panels of Figure 7a.

The sweep runs through the declarative engine of :mod:`repro.experiments`
(grid: one workload × cutoff policies × mantissa formats); the reported
numbers are identical to the pre-engine hand-written loop because the
per-point protocol — reference run, truncated run, sfocu comparison — is
unchanged.

Expected shape (paper): excluding the finest AMR level (M−1) drops the error
by many orders of magnitude for small mantissas, and the truncated share of
the operations shrinks as the cutoff is coarsened.
"""
from __future__ import annotations

import pytest

from repro.core import FPFormat
from repro.experiments import PolicySpec, SweepSpec, run_sweep

from conftest import MANTISSA_POINTS, print_table, save_results

CUTOFFS = (0, 1, 2, 3)

SEDOV_CONFIG = dict(
    nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=3,
    t_end=0.02, rk_stages=1, reconstruction="plm",
)


def run_experiment():
    spec = SweepSpec(
        workloads=["sedov"],
        formats=[FPFormat(11, man_bits) for man_bits in MANTISSA_POINTS],
        policies=[PolicySpec.amr_cutoff(cutoff, modules=("hydro",)) for cutoff in CUTOFFS],
        workload_configs={"sedov": SEDOV_CONFIG},
        variables=("dens",),
    )
    result = run_sweep(spec)

    rows = []
    series = {}
    point_iter = iter(result.points)
    for cutoff in CUTOFFS:
        series[cutoff] = []
        for man_bits in MANTISSA_POINTS:
            point = next(point_iter)
            # the grid enumerates policy-major/format-minor; make the row
            # labelling self-checking rather than trusting iteration order
            assert point.policy == f"M-{cutoff}[hydro]", point.policy
            assert point.fmt.man_bits == man_bits, (point.fmt, man_bits)
            error = point.l1("dens")
            gflops_trunc, gflops_full = point.giga_ops
            record = {
                "cutoff": f"M-{cutoff}",
                "man_bits": man_bits,
                "l1_dens": error,
                "truncated_fraction": point.truncated_fraction,
                "giga_ops_truncated": gflops_trunc,
                "giga_ops_full": gflops_full,
                "n_leaves": point.info["n_leaves"],
            }
            series[cutoff].append(record)
            rows.append(
                [f"M-{cutoff}", man_bits, f"{error:.3e}", f"{point.truncated_fraction:.1%}",
                 f"{gflops_trunc:.4f}", f"{gflops_full:.4f}"]
            )
    # wall-clock of the sweep on the current kernel plane (the reference
    # task rides the fused fast plane under the default "auto"), so the
    # perf trajectory of this figure is tracked alongside its numbers
    timing = {
        "plane": spec.plane,
        "elapsed_seconds": result.elapsed_seconds,
        "total_point_seconds": result.total_point_seconds,
    }
    return rows, series, timing


@pytest.mark.benchmark(group="figure7a")
def test_fig7a_sedov_error_vs_mantissa(benchmark):
    rows, series, timing = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "Figure 7a — Sedov: L1 density error vs mantissa bits per AMR cutoff",
        ["cutoff", "mantissa", "L1(dens)", "trunc ops", "Gops trunc", "Gops full"],
        rows,
    )
    save_results("fig7a_sedov", {"cutoffs": series, "timing": timing})

    assert timing["elapsed_seconds"] > 0

    # shape assertions mirroring the paper's observations
    by_cutoff = {c: {r["man_bits"]: r for r in recs} for c, recs in series.items()}
    smallest = min(MANTISSA_POINTS)
    # 1. at the smallest mantissa, excluding the finest level reduces the error
    assert by_cutoff[1][smallest]["l1_dens"] < by_cutoff[0][smallest]["l1_dens"]
    # 2. the truncated fraction shrinks monotonically as the cutoff coarsens
    widest = max(MANTISSA_POINTS)
    fracs = [by_cutoff[c][widest]["truncated_fraction"] for c in CUTOFFS]
    assert all(fracs[i] >= fracs[i + 1] for i in range(len(fracs) - 1))
    # 3. full truncation error decreases (weakly) with more mantissa bits
    errs = [by_cutoff[0][m]["l1_dens"] for m in MANTISSA_POINTS]
    assert errs[-1] <= errs[0]
