"""Adaptive cliff search vs fixed-grid sweep: point counts and wall-clock.

The adaptive search promises the same cliff as an exhaustive mantissa grid
with O(log n) instead of O(n) runs.  This benchmark measures both on the
cellular detonation (the paper's Hypothesis-2 experiment: at how few EOS
mantissa bits does the Newton inversion stop converging?) and records the
comparison to ``benchmarks/results/BENCH_adaptive.json``.
"""
from __future__ import annotations

import json
import time

import pytest

from repro.core import RaptorRuntime
from repro.core.fpformat import FPFormat
from repro.experiments import PolicySpec, find_cliff
from repro.experiments.adaptive import max_bisection_runs
from repro.workloads import CellularConfig, CellularWorkload

from conftest import RESULTS_DIR, print_table

MIN_BITS, MAX_BITS = 8, 48
CELLULAR = dict(n_cells=32, n_steps=8)


def run_experiment():
    workload = CellularWorkload(CellularConfig(**CELLULAR))
    policy = PolicySpec.module("eos")
    reference = workload.reference().detach()

    # fixed grid: every mantissa width in range
    t0 = time.perf_counter()
    grid_cliff = None
    grid_points = 0
    for man_bits in range(MIN_BITS, MAX_BITS + 1):
        rt = RaptorRuntime()
        outcome = workload.run(policy=policy.build(FPFormat(11, man_bits), rt), runtime=rt)
        grid_points += 1
        if grid_cliff is None and workload.acceptable(outcome, reference):
            grid_cliff = man_bits
    grid_seconds = time.perf_counter() - t0

    # adaptive: bisection over the same range
    t0 = time.perf_counter()
    cliff = find_cliff(
        workload, policy, min_man_bits=MIN_BITS, max_man_bits=MAX_BITS, reference=reference
    )
    bisect_seconds = time.perf_counter() - t0

    return {
        "workload": "cellular",
        "policy": policy.describe(),
        "bits_range": [MIN_BITS, MAX_BITS],
        "grid_cliff_man_bits": grid_cliff,
        "bisect_cliff_man_bits": cliff.cliff_man_bits,
        "grid_points": grid_points,
        "bisect_points": cliff.n_runs,
        "bisect_point_bound": max_bisection_runs(MIN_BITS, MAX_BITS),
        "grid_seconds": grid_seconds,
        "bisect_seconds": bisect_seconds,
        "speedup": grid_seconds / bisect_seconds if bisect_seconds > 0 else float("inf"),
    }


@pytest.mark.benchmark(group="adaptive")
def test_bench_adaptive_vs_fixed_grid(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "Adaptive cliff search vs fixed grid — Cellular EOS truncation",
        ["method", "cliff", "runs", "seconds"],
        [
            ["fixed grid", f"m{record['grid_cliff_man_bits']}",
             record["grid_points"], f"{record['grid_seconds']:.2f}"],
            ["bisection", f"m{record['bisect_cliff_man_bits']}",
             record["bisect_points"], f"{record['bisect_seconds']:.2f}"],
        ],
    )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    with open(RESULTS_DIR / "BENCH_adaptive.json", "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)

    # both methods find the same cliff; bisection within its O(log n) bound
    assert record["bisect_cliff_man_bits"] == record["grid_cliff_man_bits"]
    assert record["bisect_points"] <= record["bisect_point_bound"]
    assert record["bisect_points"] < record["grid_points"]
