"""Reference-cache benchmark: cold vs warm sweep wall-clock.

The full-precision reference trajectory is the single most expensive
redundant step when a sweep is re-run (parameter studies, CI, figure
regeneration): every point's truncated run is compared against it, but it
never changes between invocations of the same (workload, config).  This
benchmark measures the saving directly — a cold ``run_sweep`` that computes
and stores the references, then a warm one that serves them from
:class:`repro.experiments.ReferenceCache` and launches zero reference
tasks.

The warm run must also be *bit-identical* to the cold one (the cache
round-trips the reference state exactly), which the assertions pin down.
"""
from __future__ import annotations

import time

import pytest

from repro.experiments import PolicySpec, ReferenceCache, SweepSpec, run_sweep

from conftest import print_table, save_results

WORKLOADS = ("kh", "sedov")
FORMATS = ("fp32", "bf16", "fp16")
CONFIG = dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2, t_end=0.01, rk_stages=1)


def _spec(cache_dir=None) -> SweepSpec:
    return SweepSpec(
        workloads=list(WORKLOADS),
        formats=list(FORMATS),
        policies=[PolicySpec.everywhere(modules=("hydro",))],
        workload_configs={name: dict(CONFIG) for name in WORKLOADS},
        variables=("dens",),
        cache_dir=str(cache_dir) if cache_dir is not None else None,
    )


def run_experiment(cache_dir):
    timings = {}

    start = time.perf_counter()
    uncached = run_sweep(_spec())
    timings["uncached"] = time.perf_counter() - start

    cache = ReferenceCache(cache_dir)
    start = time.perf_counter()
    cold = run_sweep(_spec(), cache=cache)
    timings["cold"] = time.perf_counter() - start

    start = time.perf_counter()
    warm = run_sweep(_spec(), cache=cache)
    timings["warm"] = time.perf_counter() - start

    return timings, uncached, cold, warm


@pytest.mark.benchmark(group="cache")
def test_cache_cold_vs_warm(benchmark, tmp_path):
    timings, uncached, cold, warm = benchmark.pedantic(
        run_experiment, args=(tmp_path / "refs",), rounds=1, iterations=1
    )

    speedup = timings["uncached"] / timings["warm"] if timings["warm"] else float("inf")
    rows = [
        ["uncached", f"{timings['uncached']:.2f}", "-", "-"],
        ["cold (cache miss)", f"{timings['cold']:.2f}",
         str(cold.cache_stats["misses"]), str(cold.cache_stats["stores"])],
        ["warm (cache hit)", f"{timings['warm']:.2f}",
         str(warm.cache_stats["hits"]), "0"],
    ]
    print_table(
        f"Reference cache — sweep wall-clock, warm speedup {speedup:.2f}x",
        ["run", "seconds", "hits/misses", "stores"],
        rows,
    )
    save_results(
        "cache_sweep",
        {"timings": timings, "cold": cold.cache_stats, "warm": warm.cache_stats,
         "speedup_vs_uncached": speedup},
    )

    # the warm run served every reference from the cache...
    assert warm.cache_stats["hits"] == len(WORKLOADS)
    assert warm.cache_stats["misses"] == 0 and warm.cache_stats["stores"] == 0
    # ...and reproduced the uncached metrics bit for bit
    for a, b in zip(uncached.points, warm.points):
        assert a.metrics_key() == b.metrics_key()
    # wall-clock is reported, not asserted: single-round timings on shared
    # CI machines are too noisy to gate on, and the cache-stats asserts
    # above already pin that the reference work was skipped
