"""Figure 1: Bubble interface evolution under different truncation strategies.

Reproduces the protocol behind Figure 1: the advection and diffusion
operators of the incompressible Navier–Stokes solver are truncated to 4-bit
and 12-bit mantissas with three strategies — everywhere, cutoff at M−1, and
cutoff at M−2 (interface-distance pseudo-AMR levels) — and the interface
evolution is compared against the full-precision run.

Expected shape (paper): aggressive truncation at 4 bits visibly distorts the
interface (artefacts, changed break-up), 12 bits with selective truncation
stays close to the reference, and the cutoff strategies reduce the deviation
relative to truncating everywhere.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.incomp import BubbleConfig
from repro.workloads import BubbleExperimentConfig, BubbleWorkload

from conftest import print_table, save_results

STRATEGIES = ("everywhere", "cutoff-1", "cutoff-2")
MANTISSAS = (4, 12)


def _workload() -> BubbleWorkload:
    return BubbleWorkload(
        BubbleExperimentConfig(
            solver=BubbleConfig(
                nx=28, ny=42, xlim=(-1.0, 1.0), ylim=(-1.0, 2.0),
                reynolds=3500.0, advection_scheme="weno5", reinit_interval=5,
            ),
            max_level=3,
            spin_up_time=0.08,
            truncation_time=0.12,
            snapshot_times=(0.06, 0.12),
            fixed_dt=0.004,
        )
    )


def run_experiment():
    workload = _workload()
    reference = workload.run_strategy("none", 52)
    records = []
    for man_bits in MANTISSAS:
        for strategy in STRATEGIES:
            result = workload.run_strategy(strategy, man_bits)
            records.append(
                {
                    "strategy": strategy,
                    "man_bits": man_bits,
                    "interface_deviation": workload.error(result, reference),
                    "gas_volume": result.info["gas_volume"],
                    "fragments": int(result.info["fragments"]),
                    "centroid_rise": result.info["centroid_rise"],
                    "truncated_ops": result.runtime.ops.truncated,
                }
            )
    ref_record = {
        "strategy": "none",
        "man_bits": 52,
        "interface_deviation": 0.0,
        "gas_volume": reference.info["gas_volume"],
        "fragments": int(reference.info["fragments"]),
        "centroid_rise": reference.info["centroid_rise"],
        "truncated_ops": 0,
    }
    return [ref_record] + records


@pytest.mark.benchmark(group="figure1")
def test_fig1_bubble_truncation_strategies(benchmark):
    records = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [r["strategy"], r["man_bits"], f"{r['interface_deviation']:.3e}", f"{r['gas_volume']:.4f}",
         r["fragments"], f"{r['centroid_rise']:.4f}"]
        for r in records
    ]
    print_table(
        "Figure 1 — Bubble: interface deviation vs truncation strategy",
        ["strategy", "mantissa", "|phi - phi_ref|", "gas volume", "fragments", "centroid rise"],
        rows,
    )
    save_results("fig1_bubble", records)

    by_key = {(r["strategy"], r["man_bits"]): r for r in records}
    # truncation perturbs the interface, more so at 4 bits than at 12 bits
    assert by_key[("everywhere", 4)]["interface_deviation"] > 0
    assert (
        by_key[("everywhere", 12)]["interface_deviation"]
        <= by_key[("everywhere", 4)]["interface_deviation"]
    )
    # selective truncation (cutoffs) is not substantially worse than
    # truncating everywhere at 4 bits (it protects the interface region)
    assert (
        by_key[("cutoff-2", 4)]["interface_deviation"]
        <= by_key[("everywhere", 4)]["interface_deviation"] * 1.5
    )
    # physical sanity: the bubble still rises and gas volume stays positive
    for r in records:
        assert np.isfinite(r["interface_deviation"])
        assert r["gas_volume"] > 0
