"""Table 3: slowdown of RAPTOR in practice (Sedov).

Measures the wall-clock overhead of the emulation relative to an
uninstrumented run for the same configurations the paper reports:

* op-mode, naive runtime vs. scratch-optimised runtime, for AMR cutoffs
  M−0 … M−3 (the truncated-op share shrinks with the cutoff);
* op-mode with operation counting enabled;
* mem-mode with and without an excluded module (both rows cost about the
  same because exclusion is handled dynamically).

Absolute numbers are Python-vs-Python rather than native-vs-MPFR, but the
shape is the paper's: overhead grows with the truncated fraction, the
optimised path is cheaper than the naive one, and mem-mode is the most
expensive mode.
"""
from __future__ import annotations

import time

import pytest

from repro.core import AMRCutoffPolicy, GlobalPolicy, Mode, NoTruncationPolicy, RaptorRuntime, TruncationConfig
from repro.workloads import SedovConfig, SedovWorkload

from conftest import print_table, save_results

MAN_BITS = 12
CUTOFFS = (0, 1, 2, 3)


def _workload() -> SedovWorkload:
    return SedovWorkload(
        SedovConfig(
            nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=3,
            t_end=0.008, rk_stages=1, reconstruction="plm", regrid_interval=0,
        )
    )


def _timed_run(workload, policy, runtime):
    start = time.perf_counter()
    run = workload.run(policy=policy, runtime=runtime, regrid=False)
    elapsed = time.perf_counter() - start
    return elapsed, run


def run_experiment():
    workload = _workload()

    # uninstrumented baseline: full precision, no counting at all
    base_rt = RaptorRuntime("baseline")
    base_policy = NoTruncationPolicy(runtime=base_rt, count_ops=False)
    base_policy.config.track_memory = False
    baseline_time, _ = _timed_run(workload, base_policy, base_rt)

    records = [{"mode": "uninstrumented", "config": "-", "truncated_fraction": 0.0,
                "runtime_s": baseline_time, "overhead_x": 1.0}]

    def add(mode, config_label, policy, runtime):
        elapsed, run = _timed_run(workload, policy, runtime)
        records.append(
            {
                "mode": mode,
                "config": config_label,
                "truncated_fraction": run.truncated_fraction,
                "runtime_s": elapsed,
                "overhead_x": elapsed / baseline_time,
            }
        )

    for optimized, label in ((False, "op-mode naive"), (True, "op-mode optimized")):
        for cutoff in CUTOFFS:
            rt = RaptorRuntime(f"{label}-M{cutoff}")
            cfg = TruncationConfig.mantissa(
                MAN_BITS, exp_bits=11, optimized=optimized, count_ops=False, track_memory=False
            )
            policy = AMRCutoffPolicy(cfg, cutoff=cutoff, modules=["hydro"], runtime=rt)
            add(label, f"M-{cutoff}", policy, rt)

    # op-mode with operation counting (the paper's second block)
    for cutoff in (0, 2):
        rt = RaptorRuntime(f"op-count-M{cutoff}")
        cfg = TruncationConfig.mantissa(MAN_BITS, exp_bits=11, optimized=True, count_ops=True, track_memory=True)
        policy = AMRCutoffPolicy(cfg, cutoff=cutoff, modules=["hydro"], runtime=rt)
        add("op-mode + counting", f"M-{cutoff}", policy, rt)

    # mem-mode: truncate hydro, then with the reconstruction excluded
    for label, excluded in (("truncate hydro", ()), ("exclude recon", ("recon",))):
        rt = RaptorRuntime(f"mem-{label}")
        cfg = TruncationConfig.mantissa(MAN_BITS, exp_bits=11, mode=Mode.MEM, deviation_threshold=1e-7)
        policy = GlobalPolicy(cfg, runtime=rt)
        ctx = policy.context_for(module="hydro")
        ctx.exclude(*excluded)
        add("mem-mode", label, policy, rt)

    return records


@pytest.mark.benchmark(group="table3")
def test_table3_overhead(benchmark):
    records = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [r["mode"], r["config"], f"{r['truncated_fraction']:.1%}", f"{r['runtime_s']:.2f}", f"{r['overhead_x']:.1f}x"]
        for r in records
    ]
    print_table(
        "Table 3 — emulation overhead on Sedov (relative to the uninstrumented run)",
        ["mode", "config", "truncated FP ops", "runtime (s)", "overhead"],
        rows,
    )
    save_results("table3_overhead", records)

    def find(mode, config):
        return next(r for r in records if r["mode"] == mode and r["config"] == config)

    naive_m0 = find("op-mode naive", "M-0")
    naive_m3 = find("op-mode naive", "M-3")
    opt_m0 = find("op-mode optimized", "M-0")
    count_m0 = find("op-mode + counting", "M-0")
    count_m2 = find("op-mode + counting", "M-2")
    mem = find("mem-mode", "truncate hydro")
    mem_excl = find("mem-mode", "exclude recon")

    # overhead grows with the truncated share of the work (the pure-emulation
    # rows disable counting, so the share is read from the counting rows)
    assert naive_m0["overhead_x"] > naive_m3["overhead_x"]
    assert count_m0["truncated_fraction"] > count_m2["truncated_fraction"]
    # the optimised path is not slower than the naive one at full truncation
    assert opt_m0["runtime_s"] <= naive_m0["runtime_s"] * 1.05
    # mem-mode is the most expensive mode
    assert mem["overhead_x"] >= opt_m0["overhead_x"]
    # dynamic exclusion keeps mem-mode cost in the same ballpark (paper note 20)
    assert 0.4 <= mem_excl["runtime_s"] / mem["runtime_s"] <= 1.6
    # truncation always costs something relative to the uninstrumented run
    assert naive_m0["overhead_x"] > 1.0
