"""Table 4: performance density of FPUs for various precisions (FPNew data).

Regenerates the table and checks the normalised performance-density column
against the paper's values, plus the area ratio (A_dbl : A_low = 1.39) the
co-design model derives from it.
"""
from __future__ import annotations

import pytest

from repro.codesign import area_ratio, normalized_performance_density, performance_density, table4_rows
from repro.core import FPFormat

from conftest import print_table, save_results

PAPER_VALUES = {"fp64": 1.00, "fp32": 2.65, "fp16": 7.30, "fp8": 18.41}


def run_experiment():
    rows = table4_rows()
    # extend with a few extrapolated formats used elsewhere in the harness
    for fmt, label in ((FPFormat(8, 7), "bf16*"), (FPFormat(11, 36), "e11m36*"), (FPFormat(5, 14), "e5m14*")):
        rows.append(
            {
                "type": label,
                "exp_bits": fmt.exp_bits,
                "man_bits": fmt.man_bits,
                "gflops": None,
                "area_kge": None,
                "perf_density_normalized": round(normalized_performance_density(fmt), 2),
            }
        )
    return rows


@pytest.mark.benchmark(group="table4")
def test_table4_fpu_performance_density(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "Table 4 — FPU performance density (FPNew data, * = extrapolated)",
        ["type", "exp", "man", "GFLOP/s", "area (kGE)", "norm. perf density"],
        [[r["type"], r["exp_bits"], r["man_bits"], r["gflops"], r["area_kge"], r["perf_density_normalized"]] for r in rows],
    )
    save_results("table4_fpu", rows)

    by_type = {r["type"]: r for r in rows}
    for name, expected in PAPER_VALUES.items():
        assert by_type[name]["perf_density_normalized"] == pytest.approx(expected, rel=0.01)
    # extrapolation is monotone: narrower formats have higher density
    assert performance_density(FPFormat(5, 14)) > performance_density(FPFormat(11, 36))
    # the derived area ratio matches the paper's 1.39 to within model slack
    assert area_ratio() == pytest.approx(1.39, rel=0.08)
