"""Figure 6: Sedov radial shock and Sod planar shock with AMR block structure.

Regenerates the data behind the qualitative Figure 6: the pressure field of
both compressible workloads on the covering grid together with the
refinement-level map, showing that the AMR hierarchy tracks the radial shock
(Sedov) and the planar shock system (Sod).
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import SedovConfig, SedovWorkload, SodConfig, SodWorkload

from conftest import print_table, save_results


def run_experiment():
    sedov = SedovWorkload(SedovConfig(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=3, t_end=0.02, rk_stages=1))
    sod = SodWorkload(SodConfig(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=3, t_end=0.04, rk_stages=1))

    out = {}
    for name, workload in (("sedov", sedov), ("sod", sod)):
        run = workload.reference()
        pres = run.checkpoint["pres"]
        levels = run.grid.level_map(workload.config.max_level)
        out[name] = {
            "pressure_min": float(np.min(pres)),
            "pressure_max": float(np.max(pres)),
            "n_leaves": int(run.info["n_leaves"]),
            "finest_level": int(run.info["finest_level"]),
            "leaf_levels": run.grid.leaf_levels(),
            "finest_fraction_of_cells": float(np.mean(levels == workload.config.max_level)),
            "pressure_field_shape": list(pres.shape),
        }
        # keep the fields so the example scripts / EXPERIMENTS.md can plot them
        out[name]["pressure_field"] = pres.tolist()
        out[name]["level_map"] = levels.tolist()
    return out


@pytest.mark.benchmark(group="figure6")
def test_fig6_shock_fields_with_amr(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [name, d["n_leaves"], d["finest_level"], f"{d['finest_fraction_of_cells']:.1%}",
         f"{d['pressure_min']:.3e}", f"{d['pressure_max']:.3e}"]
        for name, d in out.items()
    ]
    print_table(
        "Figure 6 — compressible workloads: AMR structure and pressure range",
        ["workload", "leaves", "finest level", "cells at finest", "p_min", "p_max"],
        rows,
    )
    save_results("fig6_fields", {k: {kk: vv for kk, vv in v.items() if kk not in ("pressure_field", "level_map")} for k, v in out.items()})

    # shape assertions: AMR refines around the shock in both workloads
    for name in ("sedov", "sod"):
        assert out[name]["finest_level"] == 3
        assert 0.0 < out[name]["finest_fraction_of_cells"] < 1.0
        assert out[name]["pressure_max"] > out[name]["pressure_min"] > 0
    # Sedov refines a compact radial region; Sod refines stripes along y:
    # both leave a sizeable part of the domain at coarser levels
    assert out["sedov"]["finest_fraction_of_cells"] < 0.9
    assert out["sod"]["finest_fraction_of_cells"] < 0.9
