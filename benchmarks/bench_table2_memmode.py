"""Table 2: numerically debugging Sedov with mem-mode.

Truncates the hydrodynamics of the Sedov problem in mem-mode (shadow-value
tracking) with a fixed time step, then repeats the run while excluding
individual solver stages — Reconstruction, Reconstruction+Riemann,
Reconstruction+Update — from truncation, reporting the L1 error norms of
density and x-velocity and the fraction of operations that were truncated,
exactly like Table 2 of the paper.

Expected shape (paper): excluding Recon gives a small improvement, excluding
the Riemann solver as well makes the errors *worse*, excluding Update leaves
them essentially unchanged — i.e. no single stage owns the sensitivity.
The flagged-operation heat-map that drives this workflow is also produced.
"""
from __future__ import annotations

import pytest

from repro.core import GlobalPolicy, Mode, RaptorRuntime, TruncationConfig
from repro.workloads import SedovConfig, SedovWorkload

from conftest import print_table, save_results

MAN_BITS = 12
EXCLUSION_ROWS = (
    ("Baseline", ()),
    ("Recon", ("recon",)),
    ("Recon, Riemann", ("recon", "riemann")),
    ("Recon, Update", ("recon", "update")),
)


def _workload() -> SedovWorkload:
    return SedovWorkload(
        SedovConfig(
            nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2,
            t_end=0.015, rk_stages=1, reconstruction="plm",
            # fixed time step so dynamic time stepping cannot mask the errors
            fixed_dt=5e-4, regrid_interval=0,
        )
    )


def run_experiment():
    workload = _workload()
    reference = workload.reference()

    records = []
    flagged_labels = {}
    for label, excluded in EXCLUSION_ROWS:
        runtime = RaptorRuntime(f"table2-{label}")
        config = TruncationConfig.mantissa(
            MAN_BITS, exp_bits=11, mode=Mode.MEM, deviation_threshold=1e-7
        )
        policy = GlobalPolicy(config, runtime=runtime)
        # pre-create the mem-mode context so the exclusions are in place
        ctx = policy.context_for(module="hydro")
        ctx.exclude(*excluded)
        run = workload.run(policy=policy, runtime=runtime)
        errors = run.errors(reference, ("dens", "velx"))
        report = ctx.report()
        flagged_labels[label] = report.flagged_labels()[:5]
        records.append(
            {
                "excluded_modules": label,
                "l1_dens": errors["dens"],
                "l1_velx": errors["velx"],
                "truncated_fraction": run.truncated_fraction,
                "flagged_operations": int(sum(f for _, f, _, _ in report.entries)),
                "top_flagged_labels": flagged_labels[label],
            }
        )
    return records


@pytest.mark.benchmark(group="table2")
def test_table2_memmode_debugging(benchmark):
    records = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [r["excluded_modules"], f"{r['l1_dens']:.3e}", f"{r['l1_velx']:.3e}",
         f"{r['truncated_fraction']:.1%}", r["flagged_operations"]]
        for r in records
    ]
    print_table(
        "Table 2 — Sedov mem-mode debugging (L1 error norms, truncated-op share)",
        ["excluded modules", "density", "x-velocity", "truncated FP ops", "flagged ops"],
        rows,
    )
    save_results("table2_memmode", records)

    by_label = {r["excluded_modules"]: r for r in records}
    baseline = by_label["Baseline"]
    # baseline truncates the (vast) majority of the hydro operations
    assert baseline["truncated_fraction"] > 0.5
    # excluding stages reduces the truncated-op share
    for label in ("Recon", "Recon, Riemann", "Recon, Update"):
        assert by_label[label]["truncated_fraction"] < baseline["truncated_fraction"]
    # errors are positive and finite everywhere, and the mem-mode runtime
    # flagged operations in the truncated hydro (the heat-map exists)
    for r in records:
        assert r["l1_dens"] > 0 and r["l1_velx"] > 0
    assert baseline["flagged_operations"] > 0
    # no single exclusion removes the error (the paper's conclusion): the
    # best exclusion still leaves a non-trivial share of the baseline error
    best = min(r["l1_dens"] for r in records[1:])
    assert best > 0.05 * baseline["l1_dens"]
