#!/usr/bin/env python
"""Hardware co-design: turning RAPTOR profiles into speedup estimates.

Reproduces the Section 7.2 workflow on the Sod shock tube:

1. run the workload with the hydro module truncated (operation and memory
   counting enabled) for a few mantissa widths and AMR cutoffs;
2. feed the collected counters into the FPU performance-density model
   (Table 4 / FPNew data) and the roofline model;
3. print the estimated compute-bound and memory-bound speedups (Figure 8)
   together with the FPU model itself (Table 4).

Run:  python examples/codesign_speedup.py
"""
from repro.codesign import estimate_speedup, table4_rows
from repro.core import AMRCutoffPolicy, FPFormat, RaptorRuntime, TruncationConfig, format_table
from repro.workloads import SodConfig, SodWorkload

MANTISSAS = (4, 10, 23, 52)
CUTOFFS = (0, 1, 2)


def main() -> None:
    print("Table 4 — FPU performance density (FPNew data):")
    print(format_table(
        ["type", "exp", "man", "GFLOP/s", "area (kGE)", "normalised density"],
        [[r["type"], r["exp_bits"], r["man_bits"], r["gflops"], r["area_kge"], r["perf_density_normalized"]]
         for r in table4_rows()],
    ))

    workload = SodWorkload(
        SodConfig(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=3, t_end=0.02, rk_stages=1)
    )

    rows = []
    for cutoff in CUTOFFS:
        for man_bits in MANTISSAS:
            runtime = RaptorRuntime(f"codesign-M{cutoff}-{man_bits}")
            policy = AMRCutoffPolicy(
                TruncationConfig.mantissa(man_bits, exp_bits=11),
                cutoff=cutoff,
                modules=["hydro"],
                runtime=runtime,
            )
            workload.run(policy=policy, runtime=runtime)
            target = FPFormat(5, man_bits) if man_bits <= 10 else FPFormat(11, man_bits)
            est = estimate_speedup(runtime, target)
            rows.append(
                [
                    f"M-{cutoff}",
                    man_bits,
                    f"{runtime.ops.truncated_fraction:.1%}",
                    f"{est.compute_bound:.2f}x",
                    f"{est.memory_bound:.2f}x",
                    est.bound,
                ]
            )
            print(f"  profiled cutoff M-{cutoff}, mantissa {man_bits}")

    print()
    print("Figure 8 — estimated speedup of Sod under the co-design model:")
    print(format_table(
        ["cutoff", "mantissa bits", "truncated ops", "compute-bound", "memory-bound", "roofline"],
        rows,
    ))
    print(
        "\nFull truncation (M-0) at half-precision-like mantissas yields a\n"
        "few-fold estimated speedup; coarser cutoffs truncate fewer operations\n"
        "and therefore gain less — the information a computing centre needs\n"
        "for FPU provisioning decisions."
    )


if __name__ == "__main__":
    main()
