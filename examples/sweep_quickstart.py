"""Precision-sweep quickstart: the whole experimental loop in one call.

Sweeps the instability workloads across truncated formats through the
declarative engine — reference runs, truncated runs, sfocu error norms and
operation-counter roll-ups included — and prints the result table:

    PYTHONPATH=src python examples/sweep_quickstart.py

Useful variations::

    # the full instability suite on all four standard formats, in parallel
    python examples/sweep_quickstart.py \
        --workloads kh,rt,double-blast --formats fp64,fp32,bf16,fp16 \
        --backend process

    # CI smoke configuration (small grid, two formats)
    python examples/sweep_quickstart.py --workloads kh --formats fp32,bf16 \
        --max-level 2 --t-end 0.005 --backend process
"""
from __future__ import annotations

import argparse
import json

from repro.core import format_table
from repro.experiments import PolicySpec, SweepSpec, run_sweep
from repro.workloads import available_workloads


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workloads",
        default="kh,rt,double-blast",
        help="comma-separated registry names (known: %s)" % ", ".join(available_workloads()),
    )
    parser.add_argument(
        "--formats",
        default="fp64,fp32,bf16,fp16",
        help="comma-separated formats (standard names or eXmY specs)",
    )
    parser.add_argument(
        "--policy",
        default="global",
        choices=["global", "m-1", "m-2"],
        help="truncation policy applied to the hydro module",
    )
    parser.add_argument("--backend", default="serial", choices=["serial", "process"])
    parser.add_argument("--max-workers", type=int, default=None)
    parser.add_argument("--max-level", type=int, default=3, help="AMR levels (8x8 blocks)")
    parser.add_argument("--t-end", type=float, default=None, help="override simulated end time")
    parser.add_argument("--json", action="store_true", help="emit the result as JSON")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    formats = [f.strip() for f in args.formats.split(",") if f.strip()]
    policy = {
        "global": PolicySpec.everywhere(modules=("hydro",)),
        "m-1": PolicySpec.amr_cutoff(1, modules=("hydro",)),
        "m-2": PolicySpec.amr_cutoff(2, modules=("hydro",)),
    }[args.policy]

    config = dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2,
                  max_level=args.max_level, rk_stages=1)
    if args.t_end is not None:
        config["t_end"] = args.t_end

    spec = SweepSpec(
        workloads=workloads,
        formats=formats,
        policies=[policy],
        workload_configs={name: dict(config) for name in workloads},
        variables=("dens", "pres"),
        backend=args.backend,
        max_workers=args.max_workers,
    )
    result = run_sweep(spec)

    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return

    print(f"\n=== precision sweep: {len(result)} points on the {args.backend} backend ===")
    print(result.table("dens"))

    rollup = result.rollup()
    gtrunc, gfull = rollup.giga_flops()
    print(
        format_table(
            ["counter", "truncated", "full"],
            [
                ["scalar ops (1e9)", f"{gtrunc:.4f}", f"{gfull:.4f}"],
                ["bytes moved", str(rollup.mem.truncated), str(rollup.mem.full)],
            ],
        )
    )


if __name__ == "__main__":
    main()
