"""Precision-sweep quickstart: the whole experimental loop in one call.

Sweeps the instability workloads across truncated formats through the
declarative engine — reference runs, truncated runs, sfocu error norms and
operation-counter roll-ups included — and prints the result table:

    PYTHONPATH=src python examples/sweep_quickstart.py

Useful variations::

    # the full instability suite on all four standard formats, in parallel
    python examples/sweep_quickstart.py \
        --workloads kh,rt,double-blast --formats fp64,fp32,bf16,fp16 \
        --backend process

    # CI smoke configuration (small grid, two formats)
    python examples/sweep_quickstart.py --workloads kh --formats fp32,bf16 \
        --max-level 2 --t-end 0.005 --backend process

    # cache the full-precision references: the second invocation reports
    # cache hits and launches zero reference tasks
    python examples/sweep_quickstart.py --cache-dir .raptor-refs
    python examples/sweep_quickstart.py --cache-dir .raptor-refs

    # shard a grid across hosts, then reassemble bit-identically
    python examples/sweep_quickstart.py --shard 0/4 --out shard0.pkl   # host A
    python examples/sweep_quickstart.py --shard 1/4 --out shard1.pkl   # host B
    ...
    python examples/sweep_quickstart.py --merge shard*.pkl
"""
from __future__ import annotations

import argparse
import json
import sys

from repro.core import format_table
from repro.experiments import CacheStats, PolicySpec, SweepResult, SweepSpec, run_sweep
from repro.workloads import available_workloads


def parse_shard(text: str):
    """Parse ``--shard i/n`` into ``(index, count)``."""
    try:
        index_part, _, count_part = text.partition("/")
        index, count = int(index_part), int(count_part)
    except ValueError:
        raise argparse.ArgumentTypeError(f"shard must look like 'i/n', got {text!r}")
    if count < 1:
        raise argparse.ArgumentTypeError(f"shard count must be >= 1, got {count}")
    if not (0 <= index < count):
        raise argparse.ArgumentTypeError(f"shard index must be in [0, {count}), got {index}")
    return index, count


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workloads",
        default="kh,rt,double-blast",
        help="comma-separated registry names (known: %s)" % ", ".join(available_workloads()),
    )
    parser.add_argument(
        "--formats",
        default="fp64,fp32,bf16,fp16",
        help="comma-separated formats (standard names or eXmY specs)",
    )
    parser.add_argument(
        "--policy",
        default="global",
        choices=["global", "m-1", "m-2"],
        help="truncation policy applied to the hydro module",
    )
    parser.add_argument("--backend", default="serial", choices=["serial", "process"])
    parser.add_argument("--max-workers", type=int, default=None)
    parser.add_argument("--max-level", type=int, default=3, help="AMR levels (8x8 blocks)")
    parser.add_argument("--t-end", type=float, default=None, help="override simulated end time")
    parser.add_argument("--json", action="store_true", help="emit the result as JSON")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory of the reference-run cache; repeated sweeps reuse "
        "full-precision references instead of recomputing them",
    )
    parser.add_argument(
        "--shard",
        type=parse_shard,
        default=None,
        metavar="I/N",
        help="run only the I-th of N deterministic grid partitions "
        "(combine the outputs with --merge)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="save the (shard) result to PATH for a later --merge",
    )
    parser.add_argument(
        "--merge",
        nargs="+",
        default=None,
        metavar="SHARD.pkl",
        help="merge shard results saved with --out instead of running a sweep",
    )
    return parser.parse_args()


def report(result: SweepResult, args: argparse.Namespace, merged: bool = False) -> None:
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return

    if merged:
        source = "reassembled from shards"
    else:
        source = f"on the {result.spec.backend} backend"
        if result.spec.shard_count > 1:
            source += f" (shard {result.spec.shard_index}/{result.spec.shard_count})"
    print(f"\n=== precision sweep: {len(result)} points {source} ===")
    print(result.table("dens"))

    rollup = result.rollup()
    gtrunc, gfull = rollup.giga_flops()
    print(
        format_table(
            ["counter", "truncated", "full"],
            [
                ["scalar ops (1e9)", f"{gtrunc:.4f}", f"{gfull:.4f}"],
                ["bytes moved", str(rollup.mem.truncated), str(rollup.mem.full)],
            ],
        )
    )
    if result.cache_stats is not None:
        print("reference cache: " + CacheStats(**result.cache_stats).describe())


def main() -> None:
    args = parse_args()

    def note(message: str) -> None:
        # keep stdout pure JSON under --json; progress notes go to stderr
        print(message, file=sys.stderr if args.json else sys.stdout)

    if args.merge is not None:
        if args.shard is not None:
            raise SystemExit("--merge and --shard are mutually exclusive")
        merged = SweepResult.merge(SweepResult.load(path) for path in args.merge)
        note(f"merged {len(args.merge)} shard file(s) into {len(merged)} points")
        report(merged, args, merged=True)
        if args.out:
            merged.save(args.out)
            note(f"saved merged result to {args.out}")
        return

    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    formats = [f.strip() for f in args.formats.split(",") if f.strip()]
    policy = {
        "global": PolicySpec.everywhere(modules=("hydro",)),
        "m-1": PolicySpec.amr_cutoff(1, modules=("hydro",)),
        "m-2": PolicySpec.amr_cutoff(2, modules=("hydro",)),
    }[args.policy]

    config = dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2,
                  max_level=args.max_level, rk_stages=1)
    if args.t_end is not None:
        config["t_end"] = args.t_end

    spec = SweepSpec(
        workloads=workloads,
        formats=formats,
        policies=[policy],
        workload_configs={name: dict(config) for name in workloads},
        variables=("dens", "pres"),
        backend=args.backend,
        max_workers=args.max_workers,
        cache_dir=args.cache_dir,
    )
    if args.shard is not None:
        spec = spec.shard(*args.shard)

    result = run_sweep(spec)
    report(result, args)
    if args.out:
        result.save(args.out)
        note(f"saved result to {args.out}")


if __name__ == "__main__":
    main()
