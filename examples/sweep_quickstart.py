"""Precision-sweep quickstart: the whole experimental loop in one call.

Sweeps any registered workload across truncated formats through the
declarative engine — reference runs, truncated runs, error norms and
operation-counter roll-ups included — and prints the result table:

    PYTHONPATH=src python examples/sweep_quickstart.py

Useful variations::

    # what can I sweep?  every registry entry with config class + metrics
    python examples/sweep_quickstart.py --list-workloads

    # the full instability suite on all four standard formats, in parallel
    python examples/sweep_quickstart.py \
        --workloads kh,rt,double-blast --formats fp64,fp32,bf16,fp16 \
        --backend process

    # CI smoke configuration (small grid, two formats)
    python examples/sweep_quickstart.py --workloads kh --formats fp32,bf16 \
        --max-level 2 --t-end 0.005 --backend process

    # kernel planes: references already run fused by default (--plane auto);
    # --plane fast also runs the points' full-precision contexts fused, and
    # --plane instrumented restores the fully counted classic behaviour
    python examples/sweep_quickstart.py --workloads kh --plane fast

    # drop the per-point operation counters: truncated points then run on
    # the fused truncating plane (bit-identical states, several times faster)
    python examples/sweep_quickstart.py --no-count-ops

    # the cellular detonation through the same engine (module-selective
    # truncation of the EOS, per-workload config overrides)
    python examples/sweep_quickstart.py --workloads cellular \
        --formats e11m46,e11m20 --policy module --modules eos \
        --config cellular:n_cells=32 --config cellular:n_steps=8

    # adaptive mode: bisect the mantissa axis to the precision cliff in
    # O(log n) runs instead of sweeping a fixed grid
    python examples/sweep_quickstart.py --adaptive --workloads cellular \
        --policy module --modules eos --min-bits 8 --max-bits 48 \
        --config cellular:n_cells=32 --config cellular:n_steps=8

    # cache the full-precision references: the second invocation reports
    # cache hits and launches zero reference tasks
    python examples/sweep_quickstart.py --cache-dir .raptor-refs
    python examples/sweep_quickstart.py --cache-dir .raptor-refs

    # shard a grid across hosts, then reassemble bit-identically
    # (works for both fixed-grid and --adaptive runs)
    python examples/sweep_quickstart.py --shard 0/4 --out shard0.pkl   # host A
    python examples/sweep_quickstart.py --shard 1/4 --out shard1.pkl   # host B
    ...
    python examples/sweep_quickstart.py --merge shard*.pkl

    # fault tolerance: record failing points instead of aborting, bound
    # each point's wall-clock on the process backend, retry transient
    # worker crashes, and journal progress so a killed sweep resumes
    # bitwise-identically from where it stopped
    python examples/sweep_quickstart.py --backend process \
        --on-error collect --point-timeout 300 --retries 2 \
        --resume .raptor-journal
"""
from __future__ import annotations

import argparse
import json
import pickle
import sys

from repro.core import format_table
from repro.experiments import (
    AdaptiveResult,
    AdaptiveSpec,
    CacheStats,
    PolicySpec,
    SweepResult,
    SweepSpec,
    run_adaptive_sweep,
    run_sweep,
)
from repro.workloads import CompressibleWorkload, describe_workloads, get_workload_class


def parse_shard(text: str):
    """Parse ``--shard i/n`` into ``(index, count)``."""
    try:
        index_part, _, count_part = text.partition("/")
        index, count = int(index_part), int(count_part)
    except ValueError:
        raise argparse.ArgumentTypeError(f"shard must look like 'i/n', got {text!r}")
    if count < 1:
        raise argparse.ArgumentTypeError(f"shard count must be >= 1, got {count}")
    if not (0 <= index < count):
        raise argparse.ArgumentTypeError(f"shard index must be in [0, {count}), got {index}")
    return index, count


def parse_config_override(text: str):
    """Parse ``--config workload:key=value`` (value via JSON, else string)."""
    workload, sep, assignment = text.partition(":")
    key, eq, value = assignment.partition("=")
    if not sep or not eq or not workload.strip() or not key.strip():
        raise argparse.ArgumentTypeError(
            f"config override must look like 'workload:key=value', got {text!r}"
        )
    try:
        parsed = json.loads(value)
    except json.JSONDecodeError:
        parsed = value
    return workload.strip(), key.strip(), parsed


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--list-workloads",
        action="store_true",
        help="print every registry entry (config class, metrics, description) and exit",
    )
    parser.add_argument(
        "--workloads",
        default="kh,rt,double-blast",
        help="comma-separated registry names (try --list-workloads)",
    )
    parser.add_argument(
        "--formats",
        default="fp64,fp32,bf16,fp16",
        help="comma-separated formats (standard names or eXmY specs)",
    )
    parser.add_argument(
        "--policy",
        default=None,
        choices=["global", "m-1", "m-2", "module"],
        help="truncation policy applied to --modules (default: global; "
        "in --adaptive mode, omitting both --policy and --modules targets "
        "each workload's own default modules)",
    )
    parser.add_argument(
        "--modules",
        default=None,
        help="comma-separated physics modules the policy truncates "
        "(default hydro; eos for cellular, advection,diffusion for bubble)",
    )
    parser.add_argument(
        "--variables",
        default=None,
        help="comma-separated error variables; default: each workload's own",
    )
    parser.add_argument(
        "--plane",
        default="auto",
        choices=["instrumented", "fast", "auto"],
        help="kernel plane of non-truncating contexts (repro.kernels): "
        "auto (default) runs reference tasks on the fused binary64 fast "
        "plane and keeps counting contexts instrumented; fast also runs "
        "the sweep points' full-precision contexts fused (bit-identical "
        "states, those counters dropped); instrumented disables the fast "
        "plane everywhere",
    )
    parser.add_argument(
        "--no-count-ops",
        action="store_true",
        help="build the sweep points' (and adaptive probes') truncating "
        "policies without operation counters; dispatch then routes them "
        "onto the fused truncating plane — states stay bit-identical, "
        "the op/byte roll-up reads zero, points run several times faster",
    )
    parser.add_argument("--backend", default="serial", choices=["serial", "process"])
    parser.add_argument("--max-workers", type=int, default=None)
    parser.add_argument(
        "--on-error",
        default="raise",
        choices=["raise", "collect"],
        help="what a failing point does: raise (default) aborts the sweep "
        "with the original exception; collect records a structured "
        "PointFailure and keeps sweeping the healthy points",
    )
    parser.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-point wall-clock bound on the process backend (per-cell "
        "in --adaptive mode); hung workers are killed and the point is "
        "reported as a timeout failure",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retry tasks orphaned by transient worker crashes up to N "
        "times in fresh process pools (default: one free rebuild, no "
        "backoff); deterministic crashers still fail after the budget",
    )
    parser.add_argument(
        "--resume",
        "--checkpoint",
        dest="checkpoint",
        default=None,
        metavar="DIR",
        help="journal every resolved point into DIR (crash-safe, atomic); "
        "rerunning the same command resumes, executing only the missing "
        "points, bitwise identical to an uninterrupted run",
    )
    parser.add_argument("--max-level", type=int, default=3, help="AMR levels (8x8 blocks)")
    parser.add_argument("--t-end", type=float, default=None, help="override simulated end time")
    parser.add_argument(
        "--config",
        action="append",
        type=parse_config_override,
        default=[],
        metavar="WORKLOAD:KEY=VALUE",
        help="per-workload config override (repeatable), e.g. cellular:n_cells=32",
    )
    parser.add_argument("--json", action="store_true", help="emit the result as JSON")
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="bisect the mantissa axis to each workload's precision cliff "
        "instead of sweeping the fixed format grid",
    )
    parser.add_argument("--min-bits", type=int, default=4, help="adaptive: smallest mantissa")
    parser.add_argument("--max-bits", type=int, default=48, help="adaptive: widest mantissa")
    parser.add_argument("--exp-bits", type=int, default=11, help="adaptive: exponent width")
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="adaptive: error threshold of the failure predicate "
        "(default: each workload's own, e.g. cellular's physics invariant)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory of the reference-run cache; repeated sweeps reuse "
        "full-precision references instead of recomputing them",
    )
    parser.add_argument(
        "--shard",
        type=parse_shard,
        default=None,
        metavar="I/N",
        help="run only the I-th of N deterministic grid partitions "
        "(combine the outputs with --merge)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="save the (shard) result to PATH for a later --merge",
    )
    parser.add_argument(
        "--merge",
        nargs="+",
        default=None,
        metavar="SHARD.pkl",
        help="merge shard results saved with --out instead of running anything",
    )
    return parser.parse_args()


def list_workloads() -> None:
    rows = []
    for row in describe_workloads():
        rows.append(
            [
                row["name"],
                ",".join(row["aliases"]) or "-",
                row["kind"],
                row["config_class"],
                ",".join(row["error_variables"]),
                row["description"],
            ]
        )
    print(format_table(
        ["workload", "aliases", "kind", "config", "error variables", "description"], rows
    ))


def build_workload_configs(args: argparse.Namespace, workloads) -> dict:
    """Compressible workloads get the grid flags; --config overrides apply
    to any workload and win over the flag-derived values."""
    compressible = dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2,
                        max_level=args.max_level, rk_stages=1)
    if args.t_end is not None:
        compressible["t_end"] = args.t_end
    configs = {}
    for name in workloads:
        if issubclass(get_workload_class(name), CompressibleWorkload):
            configs[name] = dict(compressible)
    for workload, key, value in args.config:
        configs.setdefault(workload, {})[key] = value
    return configs


def report_sweep(result: SweepResult, args: argparse.Namespace, merged: bool = False) -> None:
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return

    if merged:
        source = "reassembled from shards"
    else:
        source = f"on the {result.spec.backend} backend"
        if result.spec.shard_count > 1:
            source += f" (shard {result.spec.shard_index}/{result.spec.shard_count})"
    print(f"\n=== precision sweep: {len(result)} points {source} ===")
    print(result.table("dens"))

    rollup = result.rollup()
    gtrunc, gfull = rollup.giga_flops()
    print(
        format_table(
            ["counter", "truncated", "full"],
            [
                ["scalar ops (1e9)", f"{gtrunc:.4f}", f"{gfull:.4f}"],
                ["bytes moved", str(rollup.mem.truncated), str(rollup.mem.full)],
            ],
        )
    )
    # merge() sums shard elapsed times: aggregate compute, nobody's wall-clock
    label = "aggregate shard time" if merged else "wall-clock"
    print(
        f"{label}: {result.elapsed_seconds:.2f}s"
        f" ({result.total_point_seconds:.2f}s in point workers, plane={result.spec.plane})"
    )
    if result.cache_stats is not None:
        print("reference cache: " + CacheStats(**result.cache_stats).describe())
    if result.failures:
        print(f"failed points: {len(result.failures)}")
        for failure in result.failures:
            print(f"  {failure.describe()}")


def report_adaptive(result: AdaptiveResult, args: argparse.Namespace, merged: bool = False) -> None:
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return
    source = "reassembled from shards" if merged else f"on the {result.spec.backend} backend"
    print(f"\n=== adaptive cliff search: {len(result)} cell(s) {source} ===")
    print(result.table())
    grid_total = sum(c.grid_points for c in result.cliffs)
    print(f"total runs: {result.total_runs} (vs {grid_total} for the fixed grids)")
    if result.cache_stats is not None:
        print("reference cache: " + CacheStats(**result.cache_stats).describe())
    if result.failures:
        print(f"failed cells: {len(result.failures)}")
        for failure in result.failures:
            print(f"  {failure.describe()}")


def load_result(path):
    """Load a shard file saved with --out (sweep or adaptive)."""
    with open(path, "rb") as fh:
        result = pickle.load(fh)
    if not isinstance(result, (SweepResult, AdaptiveResult)):
        raise SystemExit(f"{path} holds a {type(result).__name__}, not a sweep/adaptive result")
    return result


def main() -> None:
    args = parse_args()

    if args.list_workloads:
        list_workloads()
        return

    def note(message: str) -> None:
        # keep stdout pure JSON under --json; progress notes go to stderr
        print(message, file=sys.stderr if args.json else sys.stdout)

    if args.merge is not None:
        if args.shard is not None:
            raise SystemExit("--merge and --shard are mutually exclusive")
        shards = [load_result(path) for path in args.merge]
        kinds = {type(s) for s in shards}
        if len(kinds) > 1:
            raise SystemExit("--merge cannot mix sweep and adaptive shard files")
        merged = kinds.pop().merge(shards)
        if isinstance(merged, AdaptiveResult):
            note(f"merged {len(args.merge)} shard file(s) into {len(merged)} cells")
            report_adaptive(merged, args, merged=True)
        else:
            note(f"merged {len(args.merge)} shard file(s) into {len(merged)} points")
            report_sweep(merged, args, merged=True)
        if args.out:
            merged.save(args.out)
            note(f"saved merged result to {args.out}")
        return

    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]

    def build_policy() -> PolicySpec:
        modules = tuple(
            m.strip() for m in (args.modules or "hydro").split(",") if m.strip()
        ) or None
        return {
            "global": PolicySpec.everywhere(modules=modules),
            "m-1": PolicySpec.amr_cutoff(1, modules=modules),
            "m-2": PolicySpec.amr_cutoff(2, modules=modules),
            "module": PolicySpec.module(*(modules or ("hydro",))),
        }[args.policy or "global"]

    workload_configs = build_workload_configs(args, workloads)

    if args.adaptive:
        if args.checkpoint is not None:
            raise SystemExit(
                "--resume/--checkpoint journals fixed-grid sweeps only; "
                "adaptive cliff searches are not checkpointable yet"
            )
        # with neither --policy nor --modules given, let each workload's
        # default_modules pick the truncation target (a fixed hydro policy
        # would truncate nothing for cellular/bubble)
        explicit = args.policy is not None or args.modules is not None
        spec = AdaptiveSpec(
            workloads=workloads,
            policies=[build_policy()] if explicit else None,
            min_man_bits=args.min_bits,
            max_man_bits=args.max_bits,
            exp_bits=args.exp_bits,
            threshold=args.threshold,
            count_probe_ops=not args.no_count_ops,
            workload_configs=workload_configs,
            plane=args.plane,
            backend=args.backend,
            max_workers=args.max_workers,
            cache_dir=args.cache_dir,
            on_error=args.on_error,
            point_timeout=args.point_timeout,
            retries=args.retries,
        )
        if args.shard is not None:
            spec = spec.shard(*args.shard)
        result = run_adaptive_sweep(spec)
        report_adaptive(result, args)
    else:
        formats = [f.strip() for f in args.formats.split(",") if f.strip()]
        variables = None
        if args.variables is not None:
            variables = tuple(v.strip() for v in args.variables.split(",") if v.strip())
        spec = SweepSpec(
            workloads=workloads,
            formats=formats,
            policies=[build_policy()],
            workload_configs=workload_configs,
            variables=variables,
            count_point_ops=not args.no_count_ops,
            plane=args.plane,
            backend=args.backend,
            max_workers=args.max_workers,
            cache_dir=args.cache_dir,
            on_error=args.on_error,
            point_timeout=args.point_timeout,
            retries=args.retries,
        )
        if args.shard is not None:
            spec = spec.shard(*args.shard)
        result = run_sweep(spec, checkpoint=args.checkpoint)
        report_sweep(result, args)

    if args.out:
        result.save(args.out)
        note(f"saved result to {args.out}")


if __name__ == "__main__":
    main()
