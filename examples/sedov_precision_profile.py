#!/usr/bin/env python
"""Sedov blast wave: which AMR levels can run at reduced precision?

Reproduces the Section 6.1 methodology on a laptop-sized Sedov problem:

1. run the full-precision reference,
2. truncate the hydro module globally (M−0) for a sweep of mantissa widths,
3. repeat with the finest AMR level excluded (M−1) and the two finest
   excluded (M−2),
4. report the sfocu L1 density error and the truncated-operation share for
   every combination — the data behind Figure 7a.

Run:  python examples/sedov_precision_profile.py
"""
from repro.core import AMRCutoffPolicy, RaptorRuntime, TruncationConfig, format_table
from repro.workloads import SedovConfig, SedovWorkload

MANTISSAS = (4, 8, 12, 23, 36, 52)
CUTOFFS = (0, 1, 2)


def main() -> None:
    workload = SedovWorkload(
        SedovConfig(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=3, t_end=0.02, rk_stages=1)
    )
    print("Running the full-precision reference ...")
    reference = workload.reference()
    print(
        f"  reference: {int(reference.info['steps'])} steps, "
        f"{int(reference.info['n_leaves'])} leaf blocks, finest level {int(reference.info['finest_level'])}"
    )

    rows = []
    for cutoff in CUTOFFS:
        for man_bits in MANTISSAS:
            runtime = RaptorRuntime(f"sedov-M{cutoff}-{man_bits}")
            policy = AMRCutoffPolicy(
                TruncationConfig.mantissa(man_bits, exp_bits=11),
                cutoff=cutoff,
                modules=["hydro"],
                runtime=runtime,
            )
            run = workload.run(policy=policy, runtime=runtime)
            rows.append(
                [
                    f"M-{cutoff}",
                    man_bits,
                    f"{run.l1_error(reference, 'dens'):.3e}",
                    f"{run.truncated_fraction:.1%}",
                    int(run.info["n_leaves"]),
                ]
            )
            print(f"  done: cutoff M-{cutoff}, mantissa {man_bits}")

    print()
    print("Sedov: L1 density error vs mantissa width and refinement cutoff")
    print(format_table(["cutoff", "mantissa bits", "L1(dens)", "truncated ops", "leaves"], rows))
    print()
    print(
        "Interpretation: with the finest level excluded from truncation (M-1),\n"
        "the error at small mantissa widths drops sharply compared to M-0 -\n"
        "the shock is protected while the quiescent regions run at low precision\n"
        "(Hypothesis 1 of the paper)."
    )


if __name__ == "__main__":
    main()
