#!/usr/bin/env python
"""Quickstart: numerically profile a small numpy kernel with RAPTOR (repro).

This example mirrors the paper's Figure 3 usage:

1. wrap an existing kernel in an op-mode truncated clone
   (``trunc_func_op`` — the ``_raptor_trunc_func_op`` analogue),
2. run it at several precisions and look at the error,
3. wrap it in a mem-mode clone (``trunc_func_mem``) to get the per-location
   deviation heat-map,
4. print the profiling report collected by the runtime.

Run:  python examples/quickstart.py
"""
import numpy as np

from repro.core import (
    RaptorRuntime,
    active_context,
    profile_report,
    trunc_func_mem,
    trunc_func_op,
)


# --- an ordinary numpy kernel: nothing RAPTOR-specific about it -------------
def smooth_and_normalise(field, weight):
    """A toy stencil kernel: weighted smoothing followed by normalisation."""
    left = np.roll(field, 1)
    right = np.roll(field, -1)
    smoothed = 0.25 * left + 0.5 * field + 0.25 * right
    blended = weight * smoothed + (1.0 - weight) * field
    return blended / np.sqrt(np.sum(blended ** 2) / blended.size)


# --- the mem-mode variant: as in the paper (Figure 3c), mem-mode needs a bit
# --- more intervention — the kernel expresses its arithmetic through the
# --- active numerics context so every value keeps its FP64 shadow.
def smooth_and_normalise_mem(field, weight):
    ctx = active_context("smooth")
    left = field[np.r_[-1, 0:field.shape[0] - 1]]
    right = field[np.r_[1:field.shape[0], 0]]
    smoothed = ctx.add(
        ctx.add(ctx.mul(0.25, left, "smooth:left"), ctx.mul(0.5, field, "smooth:centre"), "smooth:lc"),
        ctx.mul(0.25, right, "smooth:right"),
        "smooth:stencil",
    )
    blended = ctx.add(
        ctx.mul(weight, smoothed, "smooth:blend_a"),
        ctx.mul(1.0 - weight, field, "smooth:blend_b"),
        "smooth:blend",
    )
    norm = ctx.sqrt(ctx.div(ctx.sum(ctx.square(blended, "smooth:sq"), label="smooth:ssq"),
                            float(blended.shape[0]), "smooth:mean"), "smooth:norm")
    return ctx.div(blended, norm, "smooth:normalise")


def main() -> None:
    rng = np.random.default_rng(42)
    field = rng.normal(loc=1.0, scale=0.2, size=4096)
    weight = 0.7

    reference = smooth_and_normalise(field, weight)

    print("=== op-mode: truncate the kernel to different precisions ===")
    runtime = RaptorRuntime("quickstart")
    for exp_bits, man_bits, label in ((11, 52, "fp64"), (8, 23, "fp32"), (5, 10, "fp16"), (5, 4, "e5m4")):
        truncated_kernel = trunc_func_op(
            smooth_and_normalise, 64, exp_bits, man_bits, runtime=runtime, module=label
        )
        result = truncated_kernel(field, weight)
        err = float(np.max(np.abs(result - reference)))
        print(f"  {label:>6}: max abs error vs FP64 = {err:.3e}")

    print()
    print("=== mem-mode: find the operations that deviate the most ===")
    mem_kernel = trunc_func_mem(
        smooth_and_normalise_mem, 64, 5, 6, threshold=1e-3, runtime=runtime, module="smooth"
    )
    mem_kernel(field, weight)
    report = mem_kernel.context.report()
    print(report.to_text())

    print()
    print("=== runtime profile (operation and memory counters) ===")
    print(profile_report(runtime, max_locations=8))

    # outside any scope, kernels see a plain full-precision context
    assert not active_context("smooth").truncating


if __name__ == "__main__":
    main()
