#!/usr/bin/env python
"""Mem-mode numerical debugging of the Sedov problem (Section 6.3 workflow).

Demonstrates the Table 2 methodology:

1. truncate the whole hydro module of a small Sedov run in mem-mode, with a
   fixed time step so dynamic time stepping cannot mask the inaccuracies;
2. inspect the deviation heat-map — operations whose truncated result drifts
   from the FP64 shadow by more than a threshold, grouped by solver stage;
3. exclude the most-flagged stage from truncation and re-run;
4. compare the sfocu error norms of the two runs.

Run:  python examples/memmode_debugging.py
"""
from repro.core import GlobalPolicy, Mode, RaptorRuntime, TruncationConfig, format_table
from repro.workloads import SedovConfig, SedovWorkload

MAN_BITS = 12


def run_memmode(workload, reference, excluded=()):
    runtime = RaptorRuntime(f"memmode-{'-'.join(excluded) or 'baseline'}")
    config = TruncationConfig.mantissa(MAN_BITS, exp_bits=11, mode=Mode.MEM, deviation_threshold=1e-7)
    policy = GlobalPolicy(config, runtime=runtime)
    ctx = policy.context_for(module="hydro")
    ctx.exclude(*excluded)
    run = workload.run(policy=policy, runtime=runtime)
    errors = run.errors(reference, ("dens", "velx"))
    return run, ctx.report(), errors


def main() -> None:
    workload = SedovWorkload(
        SedovConfig(
            nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2,
            t_end=0.01, rk_stages=1, fixed_dt=5e-4, regrid_interval=0,
        )
    )
    print("Running the full-precision reference ...")
    reference = workload.reference()

    print(f"Truncating the hydro module to {MAN_BITS} mantissa bits in mem-mode ...")
    baseline_run, report, baseline_errors = run_memmode(workload, reference)

    print()
    print("Deviation heat-map (top flagged operation sites):")
    print(report.to_text())

    flagged = report.flagged_labels()
    most_flagged_stage = None
    for label in flagged:
        stage = label.split(":")[0]
        if stage in ("recon", "riemann", "update"):
            most_flagged_stage = stage
            break
    most_flagged_stage = most_flagged_stage or "recon"
    print(f"\nMost flagged solver stage: {most_flagged_stage!r} — excluding it and re-running ...")

    excluded_run, _, excluded_errors = run_memmode(workload, reference, excluded=(most_flagged_stage,))

    rows = [
        ["Baseline (truncate hydro)", f"{baseline_errors['dens']:.3e}", f"{baseline_errors['velx']:.3e}",
         f"{baseline_run.truncated_fraction:.1%}"],
        [f"Exclude {most_flagged_stage}", f"{excluded_errors['dens']:.3e}", f"{excluded_errors['velx']:.3e}",
         f"{excluded_run.truncated_fraction:.1%}"],
    ]
    print()
    print(format_table(["excluded modules", "L1(density)", "L1(x-velocity)", "truncated FP ops"], rows))
    print(
        "\nAs in the paper, excluding a single stage changes the errors only\n"
        "moderately: no single part of the solver owns the numerical\n"
        "sensitivity, which is exactly why an interactive profiling tool is\n"
        "needed to explore truncation strategies."
    )


if __name__ == "__main__":
    main()
