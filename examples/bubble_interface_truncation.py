#!/usr/bin/env python
"""Rising bubble: how truncation strategy and precision shape the interface.

Reproduces the protocol of Figure 1 on a small grid: the advection and
diffusion operators of the incompressible multiphase solver are truncated to
4-bit and 12-bit mantissas, either everywhere or only away from the
interface (the M−1 / M−2 interface-distance cutoffs), and the resulting
interface is compared with the full-precision run.

An ASCII rendering of the final interface is printed for each case so the
qualitative differences are visible without any plotting dependencies.

Run:  python examples/bubble_interface_truncation.py
"""
import numpy as np

from repro.core import format_table
from repro.incomp import BubbleConfig
from repro.workloads import BubbleExperimentConfig, BubbleWorkload


def ascii_interface(phi: np.ndarray, width: int = 40) -> str:
    """Render the gas region (phi > 0) as ASCII art (y up, x across)."""
    nx, ny = phi.shape
    cols = min(width, nx)
    xi = (np.linspace(0, nx - 1, cols)).astype(int)
    yi = np.arange(ny - 1, -1, -2)
    lines = []
    for j in yi:
        row = "".join("#" if phi[i, j] > 0 else "." for i in xi)
        lines.append(row)
    return "\n".join(lines)


def main() -> None:
    workload = BubbleWorkload(
        BubbleExperimentConfig(
            solver=BubbleConfig(
                nx=28, ny=42, xlim=(-1.0, 1.0), ylim=(-1.0, 2.0),
                reynolds=3500.0, advection_scheme="weno5",
            ),
            spin_up_time=0.08,
            truncation_time=0.12,
            snapshot_times=(0.06, 0.12),
            fixed_dt=0.004,
        )
    )

    print("Spin-up + full-precision reference ...")
    reference = workload.run_strategy("none", 52)

    cases = [("everywhere", 4), ("everywhere", 12), ("cutoff-1", 4), ("cutoff-2", 4)]
    rows = []
    results = {}
    for strategy, man_bits in cases:
        print(f"Running strategy={strategy!r}, mantissa={man_bits} bits ...")
        result = workload.run_strategy(strategy, man_bits)
        results[(strategy, man_bits)] = result
        rows.append(
            [
                strategy,
                man_bits,
                f"{workload.error(result, reference):.3e}",
                f"{result.info['gas_volume']:.4f}",
                int(result.info["fragments"]),
            ]
        )

    print()
    print(format_table(
        ["strategy", "mantissa bits", "interface deviation", "gas volume", "fragments"],
        [["none (reference)", 52, "0", f"{reference.info['gas_volume']:.4f}", int(reference.info["fragments"])]] + rows,
    ))

    print("\nReference interface (phi > 0 shown as '#'):")
    print(ascii_interface(reference.state["phi"]))
    print("\n4-bit mantissa, truncated everywhere:")
    print(ascii_interface(results[("everywhere", 4)].state["phi"]))
    print("\n12-bit mantissa, truncated everywhere:")
    print(ascii_interface(results[("everywhere", 12)].state["phi"]))
    print(
        "\nAs in Figure 1 of the paper, 4-bit truncation visibly distorts the\n"
        "interface while 12 bits (or restricting truncation to cells away\n"
        "from the interface) stays close to the full-precision result."
    )


if __name__ == "__main__":
    main()
