"""CI smoke check: the fused fast plane is bit-identical to the
instrumented plane.

Runs the golden Sod configuration (tests/test_golden.py) as a
full-precision reference on both kernel planes and asserts every state
variable matches **bitwise** — the contract that lets the experiment
engine route reference tasks through the fast plane silently.  A second
pass runs the golden Sedov configuration (WENO5 + HLLC) through the fast
plane's full fused-flux pipeline — Riemann/EOS fusion, preallocated
scratch workspaces and batched block stepping, which this script insists
are enabled — and diffs it against the instrumented plane the same way.
A third pass repeats both golden configurations as *truncated* (e8m10,
non-counting) runs: the instrumented op-by-op ``TruncatedContext`` path
vs the fused truncating plane (``repro.kernels.trunc``), which quantizes
at the same op boundaries and must match bitwise too.  A fourth pass
drives a regrid-heavy Kelvin–Helmholtz configuration (``max_level=3``,
regrid every step, so guard-fill plans are rebuilt constantly and
coarse/fine strips stay hot) through the fused *grid* plane — batched
guard fills, batched ``compute_dt`` and stacked refinement estimators —
and diffs it against a run with ``RAPTOR_FAST_NO_GRID`` set.
A fifth pass covers the fused *bubble* plane (``repro.kernels.bubble``):
a short rising-bubble run on the fused fast plane vs the op-by-op
instrumented baseline (``RAPTOR_FAST_NO_BUBBLE=1`` +
``plane="instrumented"``), both full-precision and truncated (e8m10) —
the WENO5 advection, diffusion, level-set and projection twins must all
match bitwise.

    PYTHONPATH=src python tools/check_plane_equivalence.py
"""
from __future__ import annotations

import sys

import numpy as np

#: the golden configurations of tests/test_golden.py
GOLDEN_CONFIGS = {
    "sod": dict(
        nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2,
        t_end=0.04, rk_stages=1, reconstruction="plm",
    ),
    "sedov": dict(
        nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2,
        t_end=0.02, rk_stages=1, reconstruction="weno5",
    ),
}

#: regrid-heavy golden pass for the fused grid plane: regrid every step so
#: guard-fill plans are invalidated and rebuilt constantly, deep enough
#: that coarse/fine guard strips are exercised throughout
GRID_GOLDEN = dict(
    nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=3,
    t_end=0.01, rk_stages=1, regrid_interval=1,
)


def _diff_planes(name: str, config: dict) -> list:
    from repro.workloads import create_workload

    instrumented = create_workload(name, **config).reference(plane="instrumented")
    fast = create_workload(name, **config).reference(plane="fast")

    failures = []
    if instrumented.time != fast.time:
        failures.append(f"{name}: final time differs: {instrumented.time} vs {fast.time}")
    for var in sorted(instrumented.state):
        a, b = instrumented.state[var], fast.state[var]
        if not np.array_equal(a, b):
            diverged = int(np.sum(a != b))
            failures.append(f"{name}: variable {var!r}: {diverged}/{a.size} cells differ")
    return failures


def _diff_trunc_planes(name: str, config: dict) -> list:
    from repro.core import FPFormat, GlobalPolicy, RaptorRuntime, TruncationConfig
    from repro.workloads import create_workload

    def run(plane):
        runtime = RaptorRuntime()
        policy = GlobalPolicy(
            TruncationConfig(targets={64: FPFormat(exp_bits=8, man_bits=10)},
                             count_ops=False, track_memory=False),
            runtime=runtime, plane=plane,
        )
        return create_workload(name, **config).run(policy=policy, runtime=runtime)

    instrumented = run("instrumented")
    fast = run("auto")

    failures = []
    if instrumented.time != fast.time:
        failures.append(
            f"{name} (truncated): final time differs: {instrumented.time} vs {fast.time}"
        )
    for var in sorted(instrumented.state):
        a, b = instrumented.state[var], fast.state[var]
        if not np.array_equal(a, b):
            diverged = int(np.sum(a != b))
            failures.append(
                f"{name} (truncated): variable {var!r}: {diverged}/{a.size} cells differ"
            )
    return failures


def _diff_grid_plane() -> list:
    """Regrid-heavy KH run: fused grid plane vs per-block grid paths."""
    import os

    from repro.workloads import create_workload

    fused = create_workload("kelvin-helmholtz", **GRID_GOLDEN).reference(plane="fast")
    os.environ["RAPTOR_FAST_NO_GRID"] = "1"
    try:
        reference = create_workload("kelvin-helmholtz", **GRID_GOLDEN).reference(
            plane="fast"
        )
    finally:
        del os.environ["RAPTOR_FAST_NO_GRID"]

    failures = []
    if fused.info["finest_level"] < 2:
        failures.append(
            "kelvin-helmholtz (grid plane): run never refined past level "
            f"{fused.info['finest_level']:.0f} — coarse/fine guard strips "
            "were not exercised"
        )
    if fused.info != reference.info:
        failures.append(
            "kelvin-helmholtz (grid plane): run summaries differ: "
            f"{fused.info} vs {reference.info}"
        )
    if fused.time != reference.time:
        failures.append(
            f"kelvin-helmholtz (grid plane): final time differs: "
            f"{fused.time} vs {reference.time}"
        )
    for var in sorted(fused.state):
        a, b = fused.state[var], reference.state[var]
        if not np.array_equal(a, b):
            diverged = int(np.sum(a != b))
            failures.append(
                f"kelvin-helmholtz (grid plane): variable {var!r}: "
                f"{diverged}/{a.size} cells differ"
            )
    return failures


#: golden bubble pass: short but long enough to cross a level-set
#: reinitialisation (10 steps per phase at the default reinit_interval=5)
BUBBLE_GOLDEN = dict(
    spin_up_time=0.04, truncation_time=0.04, snapshot_times=(0.04,),
    fixed_dt=0.004,
)


def _diff_bubble_planes() -> list:
    """Bubble run: fused bubble plane vs the op-by-op instrumented path.

    The baseline needs an explicit policy — ``Scenario.reference`` maps the
    bubble's full-precision contexts back to the solver's fast path — and
    ``RAPTOR_FAST_NO_BUBBLE=1`` so the solver's workspace glue is off too.
    """
    import os

    from repro.core import (FPFormat, GlobalPolicy, NoTruncationPolicy,
                            RaptorRuntime, TruncationConfig)
    from repro.workloads import create_workload

    def run(plane, fmt=None):
        runtime = RaptorRuntime()
        if fmt is None:
            policy = NoTruncationPolicy(runtime=runtime, count_ops=False,
                                        track_memory=False, plane=plane)
        else:
            policy = GlobalPolicy(
                TruncationConfig(targets={64: fmt}, count_ops=False,
                                 track_memory=False),
                runtime=runtime, plane=plane,
            )
        return create_workload("bubble", **BUBBLE_GOLDEN).run(
            policy=policy, runtime=runtime
        )

    fmt = FPFormat(exp_bits=8, man_bits=10)
    fused = run("fast")
    fused_trunc = run("auto", fmt)
    os.environ["RAPTOR_FAST_NO_BUBBLE"] = "1"
    try:
        reference = run("instrumented")
        reference_trunc = run("instrumented", fmt)
    finally:
        del os.environ["RAPTOR_FAST_NO_BUBBLE"]

    failures = []
    for label, a_out, b_out in (
        ("full-precision", reference, fused),
        ("truncated", reference_trunc, fused_trunc),
    ):
        if a_out.time != b_out.time:
            failures.append(
                f"bubble ({label}): final time differs: {a_out.time} vs {b_out.time}"
            )
        if a_out.info != b_out.info:
            failures.append(
                f"bubble ({label}): run summaries differ: {a_out.info} vs {b_out.info}"
            )
        for var in sorted(a_out.state):
            a, b = a_out.state[var], b_out.state[var]
            if not np.array_equal(a, b):
                diverged = int(np.sum(a != b))
                failures.append(
                    f"bubble ({label}): variable {var!r}: "
                    f"{diverged}/{a.size} cells differ"
                )
    return failures


def main() -> int:
    from repro.kernels.scratch import (
        batching_enabled,
        bubble_plane_enabled,
        grid_plane_enabled,
        scratch_enabled,
    )

    if not (scratch_enabled() and batching_enabled() and grid_plane_enabled()
            and bubble_plane_enabled()):
        print(
            "FAIL: RAPTOR_FAST_NO_SCRATCH / RAPTOR_FAST_NO_BATCH / "
            "RAPTOR_FAST_NO_GRID / RAPTOR_FAST_NO_BUBBLE are set — this "
            "check must exercise the scratch + batched + fused-grid + "
            "fused-bubble fast plane"
        )
        return 1

    failures = []
    for name, config in GOLDEN_CONFIGS.items():
        failures.extend(_diff_planes(name, config))
        failures.extend(_diff_trunc_planes(name, config))
    failures.extend(_diff_grid_plane())
    failures.extend(_diff_bubble_planes())

    if failures:
        print("FAIL: fast plane is not bit-identical to the instrumented plane")
        for line in failures:
            print(f"  - {line}")
        return 1

    print(
        "OK: golden Sod (PLM) and Sedov (WENO5, fused flux + scratch + "
        "batched) bitwise identical on both planes, full-precision and "
        "truncated (e8m10); regrid-heavy KH bitwise identical with the "
        "fused grid plane on and off; rising bubble bitwise identical on "
        "the fused bubble plane, full-precision and truncated"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
