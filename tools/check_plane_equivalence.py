"""CI smoke check: the fused fast plane is bit-identical to the
instrumented plane.

Runs the golden Sod configuration (tests/test_golden.py) as a
full-precision reference on both kernel planes and asserts every state
variable matches **bitwise** — the contract that lets the experiment
engine route reference tasks through the fast plane silently.  A second
pass runs the golden Sedov configuration (WENO5 + HLLC) through the fast
plane's full fused-flux pipeline — Riemann/EOS fusion, preallocated
scratch workspaces and batched block stepping, which this script insists
are enabled — and diffs it against the instrumented plane the same way.
A third pass repeats both golden configurations as *truncated* (e8m10,
non-counting) runs: the instrumented op-by-op ``TruncatedContext`` path
vs the fused truncating plane (``repro.kernels.trunc``), which quantizes
at the same op boundaries and must match bitwise too.

    PYTHONPATH=src python tools/check_plane_equivalence.py
"""
from __future__ import annotations

import sys

import numpy as np

#: the golden configurations of tests/test_golden.py
GOLDEN_CONFIGS = {
    "sod": dict(
        nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2,
        t_end=0.04, rk_stages=1, reconstruction="plm",
    ),
    "sedov": dict(
        nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2,
        t_end=0.02, rk_stages=1, reconstruction="weno5",
    ),
}


def _diff_planes(name: str, config: dict) -> list:
    from repro.workloads import create_workload

    instrumented = create_workload(name, **config).reference(plane="instrumented")
    fast = create_workload(name, **config).reference(plane="fast")

    failures = []
    if instrumented.time != fast.time:
        failures.append(f"{name}: final time differs: {instrumented.time} vs {fast.time}")
    for var in sorted(instrumented.state):
        a, b = instrumented.state[var], fast.state[var]
        if not np.array_equal(a, b):
            diverged = int(np.sum(a != b))
            failures.append(f"{name}: variable {var!r}: {diverged}/{a.size} cells differ")
    return failures


def _diff_trunc_planes(name: str, config: dict) -> list:
    from repro.core import FPFormat, GlobalPolicy, RaptorRuntime, TruncationConfig
    from repro.workloads import create_workload

    def run(plane):
        runtime = RaptorRuntime()
        policy = GlobalPolicy(
            TruncationConfig(targets={64: FPFormat(exp_bits=8, man_bits=10)},
                             count_ops=False, track_memory=False),
            runtime=runtime, plane=plane,
        )
        return create_workload(name, **config).run(policy=policy, runtime=runtime)

    instrumented = run("instrumented")
    fast = run("auto")

    failures = []
    if instrumented.time != fast.time:
        failures.append(
            f"{name} (truncated): final time differs: {instrumented.time} vs {fast.time}"
        )
    for var in sorted(instrumented.state):
        a, b = instrumented.state[var], fast.state[var]
        if not np.array_equal(a, b):
            diverged = int(np.sum(a != b))
            failures.append(
                f"{name} (truncated): variable {var!r}: {diverged}/{a.size} cells differ"
            )
    return failures


def main() -> int:
    from repro.kernels.scratch import batching_enabled, scratch_enabled

    if not (scratch_enabled() and batching_enabled()):
        print(
            "FAIL: RAPTOR_FAST_NO_SCRATCH / RAPTOR_FAST_NO_BATCH are set — "
            "this check must exercise the scratch + batched fast plane"
        )
        return 1

    failures = []
    for name, config in GOLDEN_CONFIGS.items():
        failures.extend(_diff_planes(name, config))
        failures.extend(_diff_trunc_planes(name, config))

    if failures:
        print("FAIL: fast plane is not bit-identical to the instrumented plane")
        for line in failures:
            print(f"  - {line}")
        return 1

    print(
        "OK: golden Sod (PLM) and Sedov (WENO5, fused flux + scratch + "
        "batched) bitwise identical on both planes, full-precision and "
        "truncated (e8m10)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
