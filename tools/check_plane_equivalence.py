"""CI smoke check: the fused fast plane is bit-identical to the
instrumented plane.

Runs the golden Sod configuration (tests/test_golden.py) as a
full-precision reference on both kernel planes and asserts every state
variable matches **bitwise** — the contract that lets the experiment
engine route reference tasks through the fast plane silently.

    PYTHONPATH=src python tools/check_plane_equivalence.py
"""
from __future__ import annotations

import sys

import numpy as np

#: the golden Sod configuration of tests/test_golden.py
GOLDEN_SOD = dict(
    nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2,
    t_end=0.04, rk_stages=1, reconstruction="plm",
)


def main() -> int:
    from repro.workloads import create_workload

    instrumented = create_workload("sod", **GOLDEN_SOD).reference(plane="instrumented")
    fast = create_workload("sod", **GOLDEN_SOD).reference(plane="fast")

    failures = []
    if instrumented.time != fast.time:
        failures.append(f"final time differs: {instrumented.time} vs {fast.time}")
    for name in sorted(instrumented.state):
        a, b = instrumented.state[name], fast.state[name]
        if not np.array_equal(a, b):
            diverged = int(np.sum(a != b))
            failures.append(f"variable {name!r}: {diverged}/{a.size} cells differ")

    if failures:
        print("FAIL: fast plane is not bit-identical to the instrumented plane")
        for line in failures:
            print(f"  - {line}")
        return 1

    variables = ", ".join(sorted(instrumented.state))
    print(f"OK: golden Sod bitwise identical on both planes ({variables})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
