"""CI chaos check: the sweep engine survives injected faults and resumes
killed sweeps bitwise-identically.

Two phases, both built on the deterministic fault injector
(:mod:`repro.testing.faults`) and a small Kelvin–Helmholtz sweep over the
four standard formats (one point per format):

**Phase A — failure isolation.**  Runs the sweep on the process backend in
``on_error="collect"`` mode with three injected faults: point 1 raises,
point 2 hangs (bounded by ``point_timeout``), point 3 SIGKILLs its worker
on every attempt.  The sweep must complete with exactly those three
:class:`PointFailure` records — kinds ``exception`` / ``timeout`` /
``worker-crash`` respectively — and the healthy point 0 (plus the
reference) must be **bitwise identical** to a fault-free serial run.

**Phase B — crash-safe resume.**  Launches the same sweep as a *child
process* with ``checkpoint=<dir>`` and a one-shot hang at point 2; once the
journal shows points 0 and 1 committed, the child is SIGKILLed mid-sweep.
Rerunning the sweep against the journal must execute only the missing
points and reassemble a result bitwise identical to the uninterrupted
serial run — per-point ``metrics_key``, state arrays, reference state and
rollup counters all included.  A spec that disagrees with the journal
(different ``t_end`` here) must be rejected with
:class:`CheckpointMismatchError`.

    PYTHONPATH=src python tools/check_fault_tolerance.py
"""
from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

#: the CI smoke KH configuration (tests/experiments FAST grid)
KH_CONFIG = dict(
    nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2,
    t_end=0.005, rk_stages=1,
)
FORMATS = ["fp64", "fp32", "bf16", "fp16"]
#: generous per-point bound: a healthy FAST point takes ~2s, the injected
#: hang sleeps for minutes — 30s separates them cleanly even on slow CI
POINT_TIMEOUT = 30.0


def build_spec(**overrides):
    from repro.experiments import PolicySpec, SweepSpec

    base = dict(
        workloads=["kelvin-helmholtz"],
        formats=FORMATS,
        policies=[PolicySpec.everywhere(modules=("hydro",))],
        workload_configs={"kelvin-helmholtz": dict(KH_CONFIG)},
        keep_states=True,
    )
    base.update(overrides)
    return SweepSpec(**base)


def diff_results(label: str, resumed, clean) -> list:
    """Bitwise comparison of two sweep results (metrics, states, rollup)."""
    failures = []
    a_keys = [p.metrics_key() for p in resumed.points]
    b_keys = [p.metrics_key() for p in clean.points]
    if a_keys != b_keys:
        failures.append(f"{label}: per-point metrics_key sequences differ")
    clean_points = {p.index: p for p in clean.points}
    for point in resumed.points:
        other = clean_points.get(point.index)
        if other is None:
            failures.append(f"{label}: point {point.index} missing from the clean run")
            continue
        for var in sorted(point.state or {}):
            a, b = point.state[var], other.state[var]
            if not np.array_equal(a, b):
                failures.append(
                    f"{label}: point {point.index} state {var!r}: "
                    f"{int(np.sum(a != b))}/{a.size} cells differ"
                )
    for name, ref in resumed.references.items():
        other = clean.references.get(name)
        if other is None:
            failures.append(f"{label}: reference {name!r} missing from the clean run")
            continue
        for var in sorted(ref.state):
            a, b = ref.state[var], other.state[var]
            if not np.array_equal(a, b):
                failures.append(
                    f"{label}: reference {name!r} state {var!r}: "
                    f"{int(np.sum(a != b))}/{a.size} cells differ"
                )
    a_roll, b_roll = resumed.rollup(), clean.rollup()
    if (a_roll.ops, a_roll.mem) != (b_roll.ops, b_roll.mem):
        failures.append(f"{label}: rollup op/byte counters differ")
    return failures


def phase_a() -> list:
    """Chaos sweep: raise@1, hang@2, kill@3 under collect mode."""
    from repro.experiments import run_sweep
    from repro.testing import Fault, FaultPlan

    clean = run_sweep(build_spec())

    marker_dir = tempfile.mkdtemp(prefix="raptor-chaos-markers-")
    plan = FaultPlan(
        faults=(
            Fault("point", 1, "raise", times=None),
            Fault("point", 2, "hang", times=None, seconds=600.0),
            Fault("point", 3, "kill", times=None),
        ),
        marker_dir=marker_dir,
    )
    with plan.installed():
        chaos = run_sweep(
            build_spec(
                backend="process",
                max_workers=2,
                on_error="collect",
                point_timeout=POINT_TIMEOUT,
            )
        )

    failures = []
    kinds = {f.index: f.kind for f in chaos.failures}
    expected = {1: "exception", 2: "timeout", 3: "worker-crash"}
    if kinds != expected:
        failures.append(f"phase A: failure map {kinds} != expected {expected}")
    if len(chaos.failures) != len(expected):
        failures.append(
            f"phase A: {len(chaos.failures)} failure records for "
            f"{len(expected)} injected faults (duplicates?)"
        )
    if [p.index for p in chaos.points] != [0]:
        failures.append(
            "phase A: healthy-point indices "
            f"{[p.index for p in chaos.points]} != [0]"
        )
    healthy = type(clean)(
        spec=chaos.spec,
        points=chaos.points,
        references=chaos.references,
    )
    clean_view = type(clean)(
        spec=clean.spec,
        points=[p for p in clean.points if p.index == 0],
        references=clean.references,
    )
    failures.extend(diff_results("phase A (healthy point vs clean serial)",
                                 healthy, clean_view))
    return failures


def run_phase_b_child(journal_dir: str) -> None:
    """Child entry point: checkpointed sweep that hangs (once) at point 2."""
    from repro.experiments import run_sweep

    run_sweep(build_spec(), checkpoint=journal_dir)


def phase_b() -> list:
    """Kill a checkpointed sweep mid-flight, resume, diff against clean."""
    from repro.experiments import (
        CheckpointMismatchError,
        SweepJournal,
        run_sweep,
    )
    from repro.testing import Fault, FaultPlan

    failures = []
    journal_dir = tempfile.mkdtemp(prefix="raptor-chaos-journal-")
    marker_dir = tempfile.mkdtemp(prefix="raptor-chaos-markers-")
    plan = FaultPlan(
        faults=(Fault("point", 2, "hang", times=1, seconds=600.0),),
        marker_dir=marker_dir,
    )
    env = dict(os.environ)
    env["RAPTOR_FAULT_PLAN"] = plan.to_json()
    child = subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--phase-b-child", journal_dir],
        env=env,
    )
    journal = SweepJournal(journal_dir)
    deadline = time.monotonic() + 300.0
    try:
        while time.monotonic() < deadline:
            if {0, 1} <= set(journal.completed_indices()):
                break
            if child.poll() is not None:
                failures.append(
                    f"phase B: child exited early (code {child.returncode}) "
                    "before hanging at point 2"
                )
                return failures
            time.sleep(0.2)
        else:
            failures.append("phase B: journal never reached points {0, 1}")
            return failures
        os.kill(child.pid, signal.SIGKILL)
    finally:
        child.wait(timeout=30)

    done = set(journal.completed_indices())
    if not ({0, 1} <= done) or done & {2, 3} == {2, 3}:
        failures.append(f"phase B: unexpected journaled indices {sorted(done)}")

    resumed = run_sweep(build_spec(), checkpoint=journal_dir)
    clean = run_sweep(build_spec())
    if len(resumed.points) != len(clean.points):
        failures.append(
            f"phase B: resumed sweep has {len(resumed.points)} points, "
            f"clean has {len(clean.points)}"
        )
    if resumed.failures:
        failures.append(f"phase B: resumed sweep recorded failures: {resumed.failures}")
    failures.extend(diff_results("phase B (resumed vs clean serial)", resumed, clean))

    mismatched = build_spec(
        workload_configs={"kelvin-helmholtz": dict(KH_CONFIG, t_end=0.01)}
    )
    try:
        run_sweep(mismatched, checkpoint=journal_dir)
        failures.append("phase B: mismatched spec was not rejected by the journal")
    except CheckpointMismatchError:
        pass
    return failures


def main() -> int:
    if len(sys.argv) >= 3 and sys.argv[1] == "--phase-b-child":
        run_phase_b_child(sys.argv[2])
        return 0

    failures = phase_a()
    failures.extend(phase_b())
    if failures:
        print("FAIL: fault-tolerance contract violated")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(
        "OK: chaos sweep isolated raise/hang/SIGKILL into exception/timeout/"
        "worker-crash failures with the healthy point bitwise identical to a "
        "fault-free serial run; a SIGKILLed checkpointed sweep resumed "
        "bitwise-identically and a mismatched spec was rejected"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
