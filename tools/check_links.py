#!/usr/bin/env python
"""Fail on broken intra-repo links in the Markdown documentation.

Scans ``README.md`` and ``docs/*.md`` for inline Markdown links
(``[text](target)``), resolves every relative target against the file that
contains it, and exits non-zero listing any target that does not exist.
Anchors (``page.md#section``) are checked against the headings of the
target file.  External links (``http(s)://``, ``mailto:``) are skipped —
this is a hermetic check, meant for CI.

    python tools/check_links.py [root]
"""
from __future__ import annotations

import functools
import re
import sys
from pathlib import Path
from typing import List, Tuple

#: inline links; the target is the first token, an optional "title" may follow
_LINK = re.compile(r"\[[^\]]*\]\(\s*([^)\s]+)(?:\s+\"[^\"]*\")?\s*\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def slugify(heading: str) -> str:
    """GitHub-style anchor of a heading."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_~]", "", text)
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


@functools.lru_cache(maxsize=None)
def anchors_of(path: Path) -> set:
    content = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    return {slugify(m.group(1)) for m in _HEADING.finditer(content)}


def check_file(path: Path, root: Path) -> List[Tuple[str, str]]:
    """Broken links of one file as (target, reason) pairs."""
    content = path.read_text(encoding="utf-8")
    # links inside fenced code blocks are examples, not navigation
    content = _CODE_FENCE.sub("", content)
    broken = []
    for match in _LINK.finditer(content):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if slugify(target[1:]) not in anchors_of(path):
                broken.append((target, "no such heading in this file"))
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        try:
            resolved.relative_to(root.resolve())
        except ValueError:
            broken.append((target, "points outside the repository"))
            continue
        if not resolved.exists():
            broken.append((target, "file does not exist"))
            continue
        if anchor and resolved.suffix == ".md":
            if slugify(anchor) not in anchors_of(resolved):
                broken.append((target, f"no heading '#{anchor}' in {file_part}"))
    return broken


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent.parent
    pages = sorted([root / "README.md", *(root / "docs").glob("*.md")])
    missing_pages = [p for p in pages if not p.is_file()]
    if missing_pages:
        for page in missing_pages:
            print(f"ERROR: expected documentation page {page} is missing")
        return 1

    failures = 0
    for page in pages:
        for target, reason in check_file(page, root):
            print(f"BROKEN {page.relative_to(root)}: ({target}) — {reason}")
            failures += 1
    checked = ", ".join(str(p.relative_to(root)) for p in pages)
    if failures:
        print(f"\n{failures} broken link(s) across {checked}")
        return 1
    print(f"all intra-repo links OK in {checked}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
